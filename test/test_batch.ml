(* The vectorized batch path: unit laws for Batch's selection vectors,
   compile ≡ eval equivalence over random expressions, and the
   differential oracle — at every batch size, every plan of the 2^|E|
   lattice must produce XML byte-identical to the tuple-at-a-time path
   with the stats counters exactly equal, in every execution mode
   (materialized, streaming, resilient under faults, parallel). *)

open Silkroute
module R = Relational
module V = R.Value

let tpch scale = Tpch.Gen.generate (Tpch.Gen.config scale)
let v n = V.Int n
let row a b c : R.Tuple.t = [| v a; v b; v c |]

(* --- Batch unit laws --------------------------------------------------- *)

let test_push_get () =
  let b = R.Batch.create ~size:4 () in
  Alcotest.(check int) "empty" 0 (R.Batch.length b);
  Alcotest.(check int) "capacity" 4 (R.Batch.capacity b);
  R.Batch.push b ~bytes:10 (row 1 2 3);
  R.Batch.push b (row 4 5 6);
  Alcotest.(check int) "two rows" 2 (R.Batch.length b);
  Alcotest.(check bool) "not full" false (R.Batch.is_full b);
  Alcotest.(check bool) "get 0" true (R.Batch.get b 0 = row 1 2 3);
  Alcotest.(check bool) "get 1" true (R.Batch.get b 1 = row 4 5 6);
  Alcotest.(check int) "bytes 0" 10 (R.Batch.bytes_at b 0);
  Alcotest.(check int) "bytes 1 defaults to 0" 0 (R.Batch.bytes_at b 1);
  R.Batch.push b (row 7 8 9);
  R.Batch.push b (row 10 11 12);
  Alcotest.(check bool) "full" true (R.Batch.is_full b);
  Alcotest.check_raises "push past capacity"
    (Invalid_argument "Batch.push: batch is full") (fun () ->
      R.Batch.push b (row 0 0 0))

let test_keep () =
  let b = R.Batch.create ~size:8 () in
  for i = 1 to 6 do
    R.Batch.push b ~bytes:i (row i i i)
  done;
  let survivors = R.Batch.keep (fun t -> t.(0) <> v 3) b in
  Alcotest.(check int) "keep returns survivors" 5 survivors;
  Alcotest.(check int) "length respects selection" 5 (R.Batch.length b);
  Alcotest.(check bool) "row 3 skipped" true (R.Batch.get b 2 = row 4 4 4);
  Alcotest.(check int) "bytes follow selection" 4 (R.Batch.bytes_at b 2);
  (* composition: the second keep only sees the first's survivors *)
  let seen = ref [] in
  let survivors2 =
    R.Batch.keep
      (fun t ->
        seen := t.(0) :: !seen;
        t.(0) < v 5)
      b
  in
  Alcotest.(check int) "refined" 3 survivors2;
  Alcotest.(check bool) "second keep re-tested only live rows" true
    (List.rev !seen = [ v 1; v 2; v 4; v 5; v 6 ]);
  Alcotest.(check bool) "to_list in order" true
    (R.Batch.to_list b = [ row 1 1 1; row 2 2 2; row 4 4 4 ]);
  Alcotest.(check bool) "to_pairs carries bytes" true
    (R.Batch.to_pairs b = [ (1, row 1 1 1); (2, row 2 2 2); (4, row 4 4 4) ]);
  Alcotest.check_raises "push after keep"
    (Invalid_argument "Batch.push: batch has a selection vector") (fun () ->
      R.Batch.push b (row 0 0 0))

let test_keep_all_and_none () =
  let b = R.Batch.create ~size:4 () in
  R.Batch.push b (row 1 1 1);
  R.Batch.push b (row 2 2 2);
  Alcotest.(check int) "keep all" 2 (R.Batch.keep (fun _ -> true) b);
  Alcotest.(check int) "then none" 0 (R.Batch.keep (fun _ -> false) b);
  Alcotest.(check int) "empty after" 0 (R.Batch.length b);
  Alcotest.(check bool) "to_list empty" true (R.Batch.to_list b = [])

let test_cursor_round_trip () =
  let rows = List.init 10 (fun i -> row i i i) in
  let c = R.Cursor.of_list [| "a"; "b"; "c" |] rows in
  let rec drain acc =
    match R.Cursor.next_batch ~size:3 c with
    | None -> List.rev acc
    | Some b -> drain (b :: acc)
  in
  let batches = drain [] in
  Alcotest.(check (list int)) "batch sizes" [ 3; 3; 3; 1 ]
    (List.map R.Batch.length batches);
  let c2 = R.Cursor.of_batches [| "a"; "b"; "c" |] batches in
  Alcotest.(check bool) "round trip preserves rows" true
    (R.Cursor.to_list c2 = rows)

(* --- leak regression: a throwing consumer must close the source ------- *)

exception Consumer_failed

let spool_files () =
  let dir = Filename.get_temp_dir_name () in
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f >= 9
         && String.sub f 0 9 = "silkroute"
         && Filename.check_suffix f ".spool")

let test_iter_closes_on_raise () =
  let before = List.length (spool_files ()) in
  let rows = List.init 50 (fun i -> row i i i) in
  let spooled = R.Cursor.spool (R.Cursor.of_list [| "a"; "b"; "c" |] rows) in
  let n = ref 0 in
  (try
     R.Cursor.iter
       (fun _ ->
         incr n;
         if !n = 5 then raise Consumer_failed)
       spooled
   with Consumer_failed -> ());
  Alcotest.(check int) "consumer saw 5 rows" 5 !n;
  Alcotest.(check int) "spool file removed on the exception path" before
    (List.length (spool_files ()));
  Alcotest.(check bool) "cursor closed: next returns None" true
    (R.Cursor.next spooled = None)

let test_spool_closes_source_on_raise () =
  let before = List.length (spool_files ()) in
  (* A spool-backed source re-spooled through a consumer that raises via
     on_row: both the partial output file and the source's backing file
     must be released. *)
  let rows = List.init 50 (fun i -> row i i i) in
  let source = R.Cursor.spool (R.Cursor.of_list [| "a"; "b"; "c" |] rows) in
  let n = ref 0 in
  (try
     ignore
       (R.Cursor.spool
          ~on_row:(fun _ ->
            incr n;
            if !n = 7 then raise Consumer_failed)
          source)
   with Consumer_failed -> ());
  Alcotest.(check int) "no spool files leaked" before
    (List.length (spool_files ()))

(* --- compile ≡ eval over random expressions --------------------------- *)

let arity = 3

let gen_value =
  QCheck.Gen.(
    oneof
      [
        return V.Null;
        map (fun n -> V.Int n) (int_range (-5) 5);
        map (fun n -> V.Float (float_of_int n /. 2.0)) (int_range (-4) 4);
        map (fun b -> V.Bool b) bool;
        map (fun s -> V.String s) (oneofl [ ""; "a"; "bc" ]);
        map (fun d -> V.Date d) (int_range 0 3);
      ])

let gen_tuple =
  QCheck.Gen.(map Array.of_list (list_repeat arity gen_value))

let gen_resolved =
  let open QCheck.Gen in
  sized
  @@ fix (fun self n ->
         let leaf =
           oneof
             [
               map (fun i -> R.Expr.R_col i) (int_range 0 (arity - 1));
               map (fun v -> R.Expr.R_lit v) gen_value;
             ]
         in
         if n <= 0 then leaf
         else
           let sub = self (n / 2) in
           oneof
             [
               leaf;
               map3
                 (fun op a b -> R.Expr.R_cmp (op, a, b))
                 (oneofl R.Expr.[ Eq; Neq; Lt; Le; Gt; Ge ])
                 sub sub;
               map3
                 (fun op a b -> R.Expr.R_arith (op, a, b))
                 (oneofl R.Expr.[ Add; Sub; Mul; Div ])
                 sub sub;
               map2 (fun a b -> R.Expr.R_and (a, b)) sub sub;
               map2 (fun a b -> R.Expr.R_or (a, b)) sub sub;
               map (fun e -> R.Expr.R_not e) sub;
               map (fun e -> R.Expr.R_is_null e) sub;
               map (fun e -> R.Expr.R_is_not_null e) sub;
             ])

let gen_case = QCheck.Gen.pair gen_resolved gen_tuple

let print_case (_, t) =
  "tuple: " ^ String.concat ", " (Array.to_list (Array.map V.to_sql t))

let prop_compile_eq_eval =
  QCheck.Test.make ~name:"compile e ≡ eval e on random expressions"
    ~count:1000 (QCheck.make ~print:print_case gen_case) (fun (e, t) ->
      R.Expr.compile e t = R.Expr.eval e t)

let prop_compile_pred_eq_eval_pred =
  QCheck.Test.make ~name:"compile_pred e ≡ eval_pred e on random expressions"
    ~count:1000 (QCheck.make ~print:print_case gen_case) (fun (e, t) ->
      R.Expr.compile_pred e t = R.Expr.eval_pred e t)

(* --- differential oracle: batched = tuple, exactly -------------------- *)

let sizes = [ 1; 7; 1024 ]
let opts_of style = { Sql_gen.style; labels = None }

let stats_sig (st : R.Executor.stats) =
  R.Executor.
    (st.scanned, st.probed, st.emitted, st.sorted, st.spill_passes, st.work)

let check_exec label (e0 : Middleware.execution) (e : Middleware.execution)
    xml0 xml =
  Alcotest.(check string) (label ^ ": XML byte-identical") xml0 xml;
  Alcotest.(check int) (label ^ ": work") e0.Middleware.work e.Middleware.work;
  Alcotest.(check int)
    (label ^ ": tuples")
    e0.Middleware.tuples e.Middleware.tuples;
  Alcotest.(check int) (label ^ ": bytes") e0.Middleware.bytes e.Middleware.bytes;
  Alcotest.(check (float 0.0))
    (label ^ ": transfer_ms")
    e0.Middleware.transfer_ms e.Middleware.transfer_ms;
  List.iter2
    (fun (a : Middleware.stream_exec) (b : Middleware.stream_exec) ->
      Alcotest.(check bool)
        (label ^ ": per-stream stats exactly equal")
        true
        (stats_sig a.Middleware.se_stats = stats_sig b.Middleware.se_stats))
    e0.Middleware.per_stream e.Middleware.per_stream

let test_lattice_materialized_streaming () =
  let db = tpch 0.05 in
  let p = Middleware.prepare_text db Queries.query1_text in
  let tree = p.Middleware.tree in
  List.iter
    (fun style ->
      let sname =
        match style with
        | Sql_gen.Outer_join -> "outer-join"
        | Sql_gen.Outer_union -> "outer-union"
      in
      List.iter
        (fun mask ->
          let plan = Partition.of_mask tree mask in
          let e0 = Middleware.execute ~style p plan in
          let xml0 = Middleware.xml_string_of p e0 in
          let se0 = Middleware.execute_streaming ~style p plan in
          let sxml0 = Middleware.xml_string_of_streaming p se0 in
          Alcotest.(check int)
            (Printf.sprintf "%s mask %d: streaming work = materialized" sname
               mask)
            e0.Middleware.work se0.Middleware.s_work;
          List.iter
            (fun size ->
              let label what =
                Printf.sprintf "%s mask %d size %d %s" sname mask size what
              in
              let e = Middleware.execute ~style ~batch_size:size p plan in
              check_exec (label "materialized") e0 e xml0
                (Middleware.xml_string_of p e);
              let se =
                Middleware.execute_streaming ~style ~batch_size:size p plan
              in
              Alcotest.(check string)
                (label "streaming: XML byte-identical")
                sxml0
                (Middleware.xml_string_of_streaming p se);
              Alcotest.(check int)
                (label "streaming: work")
                se0.Middleware.s_work se.Middleware.s_work;
              Alcotest.(check int)
                (label "streaming: tuples")
                se0.Middleware.s_tuples se.Middleware.s_tuples;
              Alcotest.(check int)
                (label "streaming: bytes")
                se0.Middleware.s_bytes se.Middleware.s_bytes;
              Alcotest.(check (float 0.0))
                (label "streaming: transfer_ms")
                se0.Middleware.s_transfer_ms se.Middleware.s_transfer_ms)
            sizes)
        (Partition.all_masks tree))
    [ Sql_gen.Outer_join; Sql_gen.Outer_union ]

let resilience_sig (r : Middleware.resilience) =
  Middleware.
    ( r.r_submits, r.r_attempts, r.r_retries, r.r_faults, r.r_timeouts,
      r.r_degraded, r.r_wasted_work )

let test_lattice_resilient_parallel () =
  let db = tpch 0.05 in
  let p = Middleware.prepare_text db Queries.query1_text in
  let tree = p.Middleware.tree in
  let faults_seen = ref 0 in
  List.iter
    (fun mask ->
      let plan = Partition.of_mask tree mask in
      (* resilient at fault rate 0.3: batched and tuple submissions see
         the same deterministic fault stream, so the resilience counters
         must match exactly along with the bytes. *)
      let backend () =
        R.Backend.create
          ~faults:(R.Backend.faults ~seed:14 0.3)
          ~retry:{ R.Backend.default_retry with R.Backend.max_retries = 8 }
          db
      in
      let r0 = Middleware.execute_resilient ~backend:(backend ()) p plan in
      let xml0 = Middleware.xml_string_of_streaming p r0.Middleware.r_streaming in
      faults_seen :=
        !faults_seen + r0.Middleware.r_resilience.Middleware.r_faults;
      (* parallel reference: tuple path at domains 1 *)
      let e0 = Middleware.execute p plan in
      let pxml0 = Middleware.xml_string_of p e0 in
      List.iter
        (fun size ->
          let r =
            Middleware.execute_resilient ~backend:(backend ()) ~batch_size:size
              p plan
          in
          let label what =
            Printf.sprintf "mask %d size %d %s" mask size what
          in
          Alcotest.(check string)
            (label "resilient: XML byte-identical")
            xml0
            (Middleware.xml_string_of_streaming p r.Middleware.r_streaming);
          Alcotest.(check bool)
            (label "resilient: counters exactly equal")
            true
            (resilience_sig r0.Middleware.r_resilience
            = resilience_sig r.Middleware.r_resilience);
          let e =
            Middleware.execute_parallel ~domains:2 ~batch_size:size p plan
          in
          check_exec (label "parallel domains 2") e0 e pxml0
            (Middleware.xml_string_of p e))
        sizes)
    (Partition.all_masks tree);
  Alcotest.(check bool) "faults actually fired at rate 0.3" true
    (!faults_seen > 0)

let suite =
  [
    Alcotest.test_case "batch push/get/bytes laws" `Quick test_push_get;
    Alcotest.test_case "selection vectors refine and compose" `Quick test_keep;
    Alcotest.test_case "keep-all / keep-none edges" `Quick
      test_keep_all_and_none;
    Alcotest.test_case "cursor next_batch/of_batches round trip" `Quick
      test_cursor_round_trip;
    Alcotest.test_case "iter closes a spooled cursor on consumer raise" `Quick
      test_iter_closes_on_raise;
    Alcotest.test_case "spool releases all files when on_row raises" `Quick
      test_spool_closes_source_on_raise;
    Alcotest.test_case
      "all plans, both styles, sizes 1/7/1024: batched = tuple (mat + \
       streaming)"
      `Slow test_lattice_materialized_streaming;
    Alcotest.test_case
      "all plans, sizes 1/7/1024: batched = tuple (resilient 0.3 + parallel)"
      `Slow test_lattice_resilient_parallel;
  ]

let props = [ prop_compile_eq_eval; prop_compile_pred_eq_eval_pred ]
