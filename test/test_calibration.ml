(* Cost-oracle calibration tolerances.  [Cost.annotate] prices the same
   physical plan the executor runs, so estimates and meter readings are
   comparable per operator.  These bounds are deliberately loose — the
   estimator carries System-R independence assumptions — but they fail
   the suite loudly if the oracle drifts grossly from the engine
   (e.g. a charge formula changes on one side only). *)

open Silkroute
module R = Relational

let qerr est act =
  let e = Float.max 1.0 est and a = Float.max 1.0 act in
  Float.max (e /. a) (a /. e)

(* Every (stream, annotated+executed plan) of the unified and fully
   partitioned plans of q1/q2, outer-join style, both reduce modes. *)
let annotated_plans () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 1.0) in
  let stats = R.Stats.analyze db in
  List.concat_map
    (fun (qname, text) ->
      let p = Middleware.prepare_text db text in
      let tree = p.Middleware.tree in
      List.concat_map
        (fun reduce ->
          let opts =
            {
              Sql_gen.style = Sql_gen.Outer_join;
              labels = (if reduce then Some p.Middleware.labels else None);
            }
          in
          List.concat_map
            (fun (pname, plan) ->
              List.mapi
                (fun i s ->
                  let phys = R.Physical.plan_of db s.Sql_gen.query in
                  let est = R.Cost.annotate stats phys in
                  let _, st = R.Executor.run_plan_with_stats db phys in
                  let ctx =
                    Printf.sprintf "%s %s reduce=%b stream=%d" qname pname
                      reduce i
                  in
                  (ctx, phys, est, st))
                (Sql_gen.streams db tree plan opts))
            [
              ("unified", Partition.unified tree);
              ("fully", Partition.fully_partitioned tree);
            ])
        [ false; true ])
    [ ("q1", Queries.query1_text); ("q2", Queries.query2_text) ]

let test_scans_exact () =
  List.iter
    (fun (ctx, phys, _, _) ->
      R.Physical.iter
        (fun n ->
          match n.R.Physical.shape with
          | R.Physical.Scan { table; _ } ->
              Alcotest.(check int)
                (Printf.sprintf "%s: scan %s rows exact" ctx table)
                n.R.Physical.act_rows
                (int_of_float n.R.Physical.est_rows)
          | _ -> ())
        phys)
    (annotated_plans ())

let test_stream_totals () =
  let plans = annotated_plans () in
  let sum_log = ref 0.0 in
  List.iter
    (fun (ctx, _, est, st) ->
      let q = qerr est.R.Cost.eval_cost (float_of_int st.R.Executor.work) in
      sum_log := !sum_log +. Float.log q;
      if q > 100.0 then
        Alcotest.failf
          "%s: whole-stream eval cost drifted %.1fx (est %.0f, actual %d)"
          ctx q est.R.Cost.eval_cost st.R.Executor.work)
    plans;
  let geo = exp (!sum_log /. float_of_int (List.length plans)) in
  if geo > 3.0 then
    Alcotest.failf "geo-mean whole-stream eval-cost q-error %.2f > 3.0" geo

let test_per_operator () =
  List.iter
    (fun (ctx, phys, _, _) ->
      R.Physical.iter
        (fun n ->
          let q =
            qerr n.R.Physical.est_rows (float_of_int n.R.Physical.act_rows)
          in
          if q > 150.0 then
            Alcotest.failf "%s: %s rows estimate drifted %.1fx (est %.0f act %d)"
              ctx (R.Physical.op_name n) q n.R.Physical.est_rows
              n.R.Physical.act_rows)
        phys)
    (annotated_plans ())

let suite =
  [
    Alcotest.test_case "scan estimates are exact" `Quick test_scans_exact;
    Alcotest.test_case "whole-stream cost within tolerance" `Quick
      test_stream_totals;
    Alcotest.test_case "per-operator rows within tolerance" `Quick
      test_per_operator;
  ]
