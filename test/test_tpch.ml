(* TPC-H generator: determinism, integrity, the distribution properties
   the experiments rely on, plus the PRNG and transfer model. *)

open Relational

let test_rng_deterministic () =
  let a = Tpch.Rng.create 7L and b = Tpch.Rng.create 7L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Tpch.Rng.next_int64 a) (Tpch.Rng.next_int64 b)
  done

let test_rng_bounds () =
  let r = Tpch.Rng.create 1L in
  for _ = 1 to 1000 do
    let x = Tpch.Rng.int r 10 in
    Alcotest.(check bool) "in [0,10)" true (x >= 0 && x < 10);
    let y = Tpch.Rng.range r 5 7 in
    Alcotest.(check bool) "in [5,7]" true (y >= 5 && y <= 7);
    let f = Tpch.Rng.float r in
    Alcotest.(check bool) "in [0,1)" true (f >= 0.0 && f < 1.0)
  done

let test_rng_split_independent () =
  let root = Tpch.Rng.create 7L in
  let a = Tpch.Rng.split root "a" and b = Tpch.Rng.split root "b" in
  Alcotest.(check bool) "labels differ" true
    (Tpch.Rng.next_int64 a <> Tpch.Rng.next_int64 b)

let test_rng_rejects_bad_bounds () =
  let r = Tpch.Rng.create 1L in
  Alcotest.(check bool) "int 0" true
    (try ignore (Tpch.Rng.int r 0); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "range inverted" true
    (try ignore (Tpch.Rng.range r 3 2); false with Invalid_argument _ -> true)

let test_generator_deterministic () =
  let a = Tpch.Gen.generate (Tpch.Gen.config 0.2) in
  let b = Tpch.Gen.generate (Tpch.Gen.config 0.2) in
  List.iter
    (fun name ->
      Alcotest.(check bool) (name ^ " identical") true
        (Relation.equal (Database.to_relation a name) (Database.to_relation b name)))
    (Database.table_names a)

let test_generator_seed_changes_data () =
  let a = Tpch.Gen.generate (Tpch.Gen.config 0.2) in
  let b = Tpch.Gen.generate (Tpch.Gen.config ~seed:43L 0.2) in
  Alcotest.(check bool) "different seed, different suppliers" false
    (Relation.equal (Database.to_relation a "Supplier") (Database.to_relation b "Supplier"))

let test_generator_integrity () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.5) in
  Alcotest.(check (list string)) "no violations" [] (Database.check_integrity db)

let test_generator_scale_monotone () =
  let small = Tpch.Gen.generate (Tpch.Gen.config 0.2) in
  let large = Tpch.Gen.generate (Tpch.Gen.config 1.0) in
  Alcotest.(check bool) "more rows at higher scale" true
    (Database.total_rows large > Database.total_rows small)

let test_suppliers_without_parts_exist () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 1.0) in
  let suppliers = Database.raw_data db "Supplier" in
  let partsupp = Database.raw_data db "PartSupp" in
  let supplying = Hashtbl.create 64 in
  Array.iter (fun row -> Hashtbl.replace supplying row.(1) ()) partsupp;
  let without =
    Array.to_list suppliers
    |> List.filter (fun row -> not (Hashtbl.mem supplying row.(0)))
  in
  Alcotest.(check bool) "some suppliers supply nothing" true (List.length without > 0)

let test_parts_without_orders_exist () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 1.0) in
  let partsupp = Database.raw_data db "PartSupp" in
  let lineitem = Database.raw_data db "LineItem" in
  let ordered = Hashtbl.create 64 in
  Array.iter
    (fun row -> Hashtbl.replace ordered (row.(1), row.(2)) ())
    lineitem (* (partkey, suppkey) *);
  let unordered =
    Array.to_list partsupp
    |> List.filter (fun row -> not (Hashtbl.mem ordered (row.(0), row.(1))))
  in
  Alcotest.(check bool) "some supplied parts unordered" true (List.length unordered > 0)

let test_every_order_has_lineitems () =
  (* declared inclusion Orders[orderkey] ⊆ LineItem[orderkey] must hold *)
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.5) in
  List.iter
    (fun inc ->
      Alcotest.(check bool) "declared inclusion holds" true
        (Database.check_inclusion db inc))
    (Database.inclusions db)

let test_figure8_database () =
  let db = Tpch.Gen.figure8_database () in
  Alcotest.(check int) "3 suppliers" 3 (Database.row_count db "Supplier");
  Alcotest.(check int) "3 partsupp" 3 (Database.row_count db "PartSupp");
  Alcotest.(check (list string)) "integrity" [] (Database.check_integrity db)

let test_config_validation () =
  Alcotest.(check bool) "non-positive scale rejected" true
    (try ignore (Tpch.Gen.config 0.0); false with Invalid_argument _ -> true)

let test_transfer_model () =
  let cfg = Transfer.default in
  let narrow =
    Relation.create [| "a" |] [ [| Value.Int 1 |]; [| Value.Int 2 |] ]
  in
  let wide =
    Relation.create [| "a"; "b" |]
      [ [| Value.Int 1; Value.String (String.make 100 'x') |];
        [| Value.Int 2; Value.String (String.make 100 'y') |] ]
  in
  Alcotest.(check bool) "wider costs more" true
    (Transfer.relation_ms cfg wide > Transfer.relation_ms cfg narrow);
  Alcotest.(check bool) "two streams cost stream overhead" true
    (Transfer.relations_ms cfg [ narrow; narrow ]
     > 2.0 *. Transfer.relation_ms cfg narrow -. 0.001);
  Alcotest.(check bool) "empty stream still costs setup" true
    (Transfer.relation_ms cfg (Relation.empty [| "a" |]) > 0.0)

let suite =
  [
    Alcotest.test_case "rng: deterministic" `Quick test_rng_deterministic;
    Alcotest.test_case "rng: bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng: split streams" `Quick test_rng_split_independent;
    Alcotest.test_case "rng: rejects bad bounds" `Quick test_rng_rejects_bad_bounds;
    Alcotest.test_case "generator: deterministic" `Quick test_generator_deterministic;
    Alcotest.test_case "generator: seed sensitivity" `Quick test_generator_seed_changes_data;
    Alcotest.test_case "generator: referential integrity" `Quick test_generator_integrity;
    Alcotest.test_case "generator: scale monotone" `Quick test_generator_scale_monotone;
    Alcotest.test_case "suppliers without parts" `Quick test_suppliers_without_parts_exist;
    Alcotest.test_case "supplied parts without orders" `Quick test_parts_without_orders_exist;
    Alcotest.test_case "declared inclusions hold" `Quick test_every_order_has_lineitems;
    Alcotest.test_case "figure 8 instance" `Quick test_figure8_database;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "transfer model" `Quick test_transfer_model;
  ]
