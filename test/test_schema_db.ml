(* Schema declarations, catalog operations, integrity checking. *)

open Relational

let people_schema =
  Schema.table "People" ~key:[ "id" ]
    [
      Schema.column "id" Value.TInt;
      Schema.column "name" Value.TString;
      Schema.column ~nullable:true "boss" Value.TInt;
    ]

let pets_schema =
  Schema.table "Pets" ~key:[ "pid" ]
    ~foreign_keys:
      [ { Schema.fk_cols = [ "owner" ]; ref_table = "People"; ref_cols = [ "id" ] } ]
    [
      Schema.column "pid" Value.TInt;
      Schema.column "owner" Value.TInt;
      Schema.column "species" Value.TString;
    ]

let mkdb () =
  let db = Database.create () in
  Database.add_table db people_schema;
  Database.add_table db pets_schema;
  db

let test_schema_helpers () =
  Alcotest.(check int) "arity" 3 (Schema.arity people_schema);
  Alcotest.(check (option int)) "column index" (Some 1)
    (Schema.column_index people_schema "name");
  Alcotest.(check bool) "has_column" true (Schema.has_column people_schema "boss");
  Alcotest.(check bool) "missing" false (Schema.has_column people_schema "xyz");
  Alcotest.(check (list string)) "names" [ "id"; "name"; "boss" ]
    (Schema.column_names people_schema)

let test_schema_key_must_exist () =
  Alcotest.(check bool) "bad key rejected" true
    (try
       ignore (Schema.table "T" ~key:[ "nope" ] [ Schema.column "a" Value.TInt ]);
       false
     with Invalid_argument _ -> true)

let test_insert_typecheck () =
  let db = mkdb () in
  Database.insert db "People"
    [ [| Value.Int 1; Value.String "ann"; Value.Null |] ];
  Alcotest.(check int) "row in" 1 (Database.row_count db "People");
  Alcotest.(check bool) "type mismatch rejected" true
    (try
       Database.insert db "People" [ [| Value.String "x"; Value.String "y"; Value.Null |] ];
       false
     with Database.Constraint_violation _ -> true);
  Alcotest.(check bool) "null in not-null rejected" true
    (try
       Database.insert db "People" [ [| Value.Null; Value.String "y"; Value.Null |] ];
       false
     with Database.Constraint_violation _ -> true);
  Alcotest.(check bool) "arity mismatch rejected" true
    (try
       Database.insert db "People" [ [| Value.Int 2 |] ];
       false
     with Database.Constraint_violation _ -> true)

let test_duplicate_table_rejected () =
  let db = mkdb () in
  Alcotest.(check bool) "dup rejected" true
    (try
       Database.add_table db people_schema;
       false
     with Invalid_argument _ -> true)

let test_key_check () =
  let db = mkdb () in
  Database.load db "People"
    [
      [| Value.Int 1; Value.String "a"; Value.Null |];
      [| Value.Int 1; Value.String "b"; Value.Null |];
    ];
  Alcotest.(check int) "one duplicate" 1 (List.length (Database.check_keys db "People"))

let test_fk_check () =
  let db = mkdb () in
  Database.load db "People" [ [| Value.Int 1; Value.String "a"; Value.Null |] ];
  Database.load db "Pets"
    [
      [| Value.Int 10; Value.Int 1; Value.String "cat" |];
      [| Value.Int 11; Value.Int 99; Value.String "dog" |];
    ];
  Alcotest.(check int) "one dangling" 1
    (List.length (Database.check_foreign_keys db "Pets"));
  Alcotest.(check int) "integrity sums" 1 (List.length (Database.check_integrity db))

let test_inclusion_check () =
  let db = mkdb () in
  Database.load db "People" [ [| Value.Int 1; Value.String "a"; Value.Null |] ];
  Database.load db "Pets" [ [| Value.Int 10; Value.Int 1; Value.String "cat" |] ];
  let holds =
    { Schema.inc_table = "People"; inc_cols = [ "id" ]; inc_ref_table = "Pets";
      inc_ref_cols = [ "owner" ] }
  in
  Alcotest.(check bool) "every person has a pet" true (Database.check_inclusion db holds);
  Database.insert db "People" [ [| Value.Int 2; Value.String "b"; Value.Null |] ];
  Alcotest.(check bool) "no longer total" false (Database.check_inclusion db holds)

let test_declared_inclusions () =
  let db = mkdb () in
  let inc =
    { Schema.inc_table = "People"; inc_cols = [ "id" ]; inc_ref_table = "Pets";
      inc_ref_cols = [ "owner" ] }
  in
  Database.declare_inclusion db inc;
  Alcotest.(check int) "recorded" 1 (List.length (Database.inclusions db))

let test_to_relation_and_sizes () =
  let db = mkdb () in
  Database.load db "People" [ [| Value.Int 1; Value.String "ann"; Value.Null |] ];
  let r = Database.to_relation db "People" in
  Alcotest.(check int) "rows" 1 (Relation.cardinality r);
  Alcotest.(check bool) "total rows" true (Database.total_rows db = 1);
  Alcotest.(check bool) "total bytes positive" true (Database.total_bytes db > 0);
  Alcotest.(check (list string)) "table names sorted" [ "People"; "Pets" ]
    (Database.table_names db)

let suite =
  [
    Alcotest.test_case "schema helpers" `Quick test_schema_helpers;
    Alcotest.test_case "key columns must exist" `Quick test_schema_key_must_exist;
    Alcotest.test_case "insert typechecking" `Quick test_insert_typecheck;
    Alcotest.test_case "duplicate table rejected" `Quick test_duplicate_table_rejected;
    Alcotest.test_case "primary key check" `Quick test_key_check;
    Alcotest.test_case "foreign key check" `Quick test_fk_check;
    Alcotest.test_case "inclusion dependency check" `Quick test_inclusion_check;
    Alcotest.test_case "declared inclusions" `Quick test_declared_inclusions;
    Alcotest.test_case "to_relation and sizes" `Quick test_to_relation_and_sizes;
  ]
