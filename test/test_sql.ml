(* SQL AST helpers, printer and parser, incl. structural round trips. *)

open Relational

let q_simple =
  Sql.select
    [ Sql.item (Expr.col ~qualifier:"s" "suppkey");
      Sql.item ~alias:"one" (Expr.int 1) ]
    [ Sql.Table { name = "Supplier"; alias = "s" } ]

let q_join =
  Sql.select
    ~where:(Some Expr.(eq (col ~qualifier:"s" "nationkey") (col ~qualifier:"n" "nationkey")))
    ~order_by:[ (Expr.col "suppkey", Sql.Asc) ]
    [ Sql.item (Expr.col ~qualifier:"s" "suppkey");
      Sql.item ~alias:"nname" (Expr.col ~qualifier:"n" "name") ]
    [ Sql.Table { name = "Supplier"; alias = "s" };
      Sql.Table { name = "Nation"; alias = "n" } ]

let q_outer =
  {
    Sql.body =
      Sql.Select
        {
          items = [ Sql.item ~alias:"k" (Expr.col ~qualifier:"b" "k") ];
          from =
            [
              Sql.Join
                {
                  left = Sql.Derived { query = q_simple; alias = "b" };
                  kind = Sql.Left_outer;
                  right =
                    Sql.Derived
                      {
                        query =
                          {
                            Sql.body =
                              Sql.Union_all
                                ( (match q_simple.Sql.body with b -> b),
                                  match q_simple.Sql.body with b -> b );
                            order_by = [];
                          };
                        alias = "q";
                      };
                  on = Expr.(eq (col ~qualifier:"b" "suppkey") (col ~qualifier:"q" "suppkey"));
                };
            ];
          where = None;
        };
    order_by = [ (Expr.col "k", Sql.Asc) ];
  }

let test_item_alias_default () =
  let it = Sql.item (Expr.col ~qualifier:"s" "name") in
  Alcotest.(check string) "defaults to column" "name" it.Sql.alias;
  Alcotest.(check bool) "complex needs alias" true
    (try
       ignore (Sql.item (Expr.int 3));
       false
     with Invalid_argument _ -> true)

let test_output_columns () =
  Alcotest.(check (list string)) "aliases" [ "suppkey"; "one" ]
    (Sql.output_columns q_simple)

let test_counters () =
  Alcotest.(check int) "no outer joins" 0 (Sql.count_outer_joins q_simple);
  Alcotest.(check int) "one outer join" 1 (Sql.count_outer_joins q_outer);
  Alcotest.(check int) "one union" 1 (Sql.count_unions q_outer)

let test_aliases () =
  match q_join.Sql.body with
  | Sql.Select s ->
      Alcotest.(check (list string)) "aliases" [ "s"; "n" ] (Sql.select_aliases s)
  | _ -> Alcotest.fail "expected select"

let round_trip q =
  let text = Sql_print.to_string q in
  let q' = Sql_parser.parse text in
  let text' = Sql_print.to_string q' in
  Alcotest.(check string) "print-parse-print fixpoint" text text'

let test_round_trip_simple () = round_trip q_simple
let test_round_trip_join () = round_trip q_join
let test_round_trip_outer () = round_trip q_outer

let test_round_trip_pretty () =
  let text = Sql_print.to_pretty_string q_outer in
  let q' = Sql_parser.parse text in
  Alcotest.(check string) "pretty parses same"
    (Sql_print.to_string q_outer) (Sql_print.to_string q')

let test_parser_literals () =
  let q = Sql_parser.parse "SELECT 1 AS a, 'it''s' AS b, NULL AS c, TRUE AS d, DATE 42 AS e, -7 AS f" in
  match q.Sql.body with
  | Sql.Select s ->
      let lits = List.map (fun (it : Sql.select_item) -> it.Sql.expr) s.Sql.items in
      Alcotest.(check int) "six items" 6 (List.length lits);
      Alcotest.(check bool) "string unescaped" true
        (List.exists (function Expr.Lit (Value.String "it's") -> true | _ -> false) lits);
      Alcotest.(check bool) "date" true
        (List.exists (function Expr.Lit (Value.Date 42) -> true | _ -> false) lits);
      Alcotest.(check bool) "negative int" true
        (List.exists (function Expr.Lit (Value.Int (-7)) -> true | _ -> false) lits)
  | _ -> Alcotest.fail "expected select"

let test_parser_case_insensitive_keywords () =
  let q = Sql_parser.parse "select x as x from T as t where (t.x >= 3) order by x desc" in
  Alcotest.(check int) "order by" 1 (List.length q.Sql.order_by);
  match q.Sql.order_by with
  | [ (_, Sql.Desc) ] -> ()
  | _ -> Alcotest.fail "expected DESC"

let test_parser_errors () =
  let bad = [ "SELECT"; "SELECT x AS x FROM"; "SELECT x AS x FROM T WHERE";
              "SELECT x AS x FROM T trailing garbage ("; "" ] in
  List.iter
    (fun text ->
      Alcotest.(check bool) ("rejects: " ^ text) true
        (try
           ignore (Sql_parser.parse text);
           false
         with Sql_parser.Parse_error _ | Sql_lexer.Lex_error _ -> true))
    bad

let test_lexer_operators () =
  let toks = Sql_lexer.tokenize "<= >= <> < > = + - * / ( ) , ." in
  Alcotest.(check int) "count incl EOF" 15 (Array.length toks)

let test_lexer_hex_float () =
  (* the printer emits lossless hex floats; the lexer must read them *)
  let f = 3.14159 in
  let toks = Sql_lexer.tokenize (Printf.sprintf "%h" f) in
  match toks.(0) with
  | Sql_lexer.FLOAT f' -> Alcotest.(check (float 0.0)) "exact" f f'
  | t -> Alcotest.fail ("expected float, got " ^ Sql_lexer.token_to_string t)

let test_with_clause_parsing () =
  let q =
    Sql_parser.parse
      "WITH base AS (SELECT t.x AS x FROM T AS t), doubled AS \
       ((SELECT b.x AS x FROM base AS b) UNION ALL (SELECT b.x AS x FROM base AS b)) \
       SELECT d.x AS x FROM doubled AS d ORDER BY x"
  in
  (* both WITH bindings desugar into derived tables *)
  Alcotest.(check int) "union inside" 1 (Sql.count_unions q);
  match q.Sql.body with
  | Sql.Select { from = [ Sql.Derived { alias = "d"; _ } ]; _ } -> ()
  | _ -> Alcotest.fail "expected derived table from WITH binding"

let test_with_round_trip () =
  List.iter
    (fun q ->
      let text = Sql_print.to_with_string q in
      let q' = Sql_parser.parse text in
      Alcotest.(check string) "with round trip" (Sql_print.to_string q)
        (Sql_print.to_string q'))
    [ q_simple; q_join; q_outer ]

let test_with_name_collision_avoided () =
  (* a derived alias colliding with a real table name must be renamed *)
  let q =
    Sql.select
      [ Sql.item (Expr.col ~qualifier:"x" "suppkey") ]
      [ Sql.Derived { query = q_simple; alias = "Supplier" } ]
    |> fun q -> { q with Sql.body = q.Sql.body }
  in
  let text = Sql_print.to_with_string q in
  let q' = Sql_parser.parse text in
  Alcotest.(check string) "collision safe" (Sql_print.to_string q)
    (Sql_print.to_string q')

let suite =
  [
    Alcotest.test_case "WITH clause parsing" `Quick test_with_clause_parsing;
    Alcotest.test_case "WITH round trip" `Quick test_with_round_trip;
    Alcotest.test_case "WITH name collision" `Quick test_with_name_collision_avoided;
    Alcotest.test_case "item alias defaulting" `Quick test_item_alias_default;
    Alcotest.test_case "output columns" `Quick test_output_columns;
    Alcotest.test_case "join/union counters" `Quick test_counters;
    Alcotest.test_case "select aliases" `Quick test_aliases;
    Alcotest.test_case "round trip: simple" `Quick test_round_trip_simple;
    Alcotest.test_case "round trip: join+order" `Quick test_round_trip_join;
    Alcotest.test_case "round trip: outer join + union" `Quick test_round_trip_outer;
    Alcotest.test_case "round trip: pretty printer" `Quick test_round_trip_pretty;
    Alcotest.test_case "parser: literals" `Quick test_parser_literals;
    Alcotest.test_case "parser: keyword case" `Quick test_parser_case_insensitive_keywords;
    Alcotest.test_case "parser: rejects malformed" `Quick test_parser_errors;
    Alcotest.test_case "lexer: operators" `Quick test_lexer_operators;
    Alcotest.test_case "lexer: hex floats" `Quick test_lexer_hex_float;
  ]
