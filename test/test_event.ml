(* The structured event log and flight recorder: ring wraparound, level
   filtering, gating, dump plumbing, dump-on-timeout and
   dump-on-breaker-open through the real middleware/backend paths,
   deterministic event sequences under identical fault seeds, GC
   telemetry on spans, and the q-error anomaly detector. *)

open Silkroute
module R = Relational
module B = Relational.Backend

let install_test_clock () =
  let t = ref 0L in
  Obs.Clock.set_source (fun () ->
      t := Int64.add !t 1_000L;
      !t)

let with_obs f =
  install_test_clock ();
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Obs.Event.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.reset ();
      Obs.Metrics.reset ();
      Obs.Event.reset ();
      Obs.Span.use_default_gc_source ();
      Obs.Clock.use_default ())
    (fun () -> Obs.Control.with_enabled true f)

let tpch scale = Tpch.Gen.generate (Tpch.Gen.config scale)
let supplier_q = "SELECT s.name AS n FROM Supplier AS s ORDER BY n"

let names () = List.map (fun (e : Obs.Event.t) -> e.Obs.Event.name) (Obs.Event.events ())

(* --- ring buffer --------------------------------------------------------- *)

let test_ring_wraparound () =
  with_obs (fun () ->
      Obs.Event.set_capacity 4;
      for i = 0 to 5 do
        Obs.Event.info (Printf.sprintf "e%d" i)
      done;
      Alcotest.(check (list string))
        "last capacity events retained, oldest first"
        [ "e2"; "e3"; "e4"; "e5" ] (names ());
      Alcotest.(check (list int))
        "seq survives eviction" [ 2; 3; 4; 5 ]
        (List.map (fun (e : Obs.Event.t) -> e.Obs.Event.seq) (Obs.Event.events ()));
      Alcotest.(check int) "all emissions recorded" 6 (Obs.Event.recorded ());
      Alcotest.(check int) "two evicted" 2 (Obs.Event.dropped ()))

let test_level_filtering () =
  with_obs (fun () ->
      Obs.Event.set_threshold Obs.Event.Warn;
      Obs.Event.debug "d";
      Obs.Event.info "i";
      Obs.Event.warn "w";
      Obs.Event.error "e";
      Alcotest.(check (list string)) "below threshold dropped" [ "w"; "e" ] (names ());
      Alcotest.(check (option int))
        "counter only for recorded levels" None
        (Obs.Metrics.counter_value "events.debug");
      Alcotest.(check (option int))
        "warn counted" (Some 1)
        (Obs.Metrics.counter_value "events.warn"))

let test_disabled_is_silent () =
  with_obs (fun () ->
      Obs.Control.with_enabled false (fun () ->
          Obs.Event.error "boom";
          Obs.Event.dump ~reason:"nope");
      Alcotest.(check (list string)) "nothing recorded" [] (names ());
      Alcotest.(check int) "no dumps" 0 (Obs.Event.dump_count ()))

let test_dump_sink () =
  with_obs (fun () ->
      let captured = ref [] in
      Obs.Event.set_dump_sink (fun d -> captured := d :: !captured);
      Obs.Event.warn "before-dump" ~attrs:[ Obs.Attr.int "n" 7 ];
      Obs.Event.dump ~reason:"unit-test";
      match !captured with
      | [ d ] ->
          Alcotest.(check string) "reason" "unit-test" d.Obs.Event.reason;
          Alcotest.(check (list string))
            "ring contents handed to sink" [ "before-dump" ]
            (List.map (fun (e : Obs.Event.t) -> e.Obs.Event.name) d.Obs.Event.dumped);
          Alcotest.(check bool)
            "render mentions reason and event" true
            (let r = Obs.Event.render d in
             let has needle =
               let nl = String.length needle and rl = String.length r in
               let rec go i = i + nl <= rl && (String.sub r i nl = needle || go (i + 1)) in
               go 0
             in
             has "unit-test" && has "before-dump" && has "n=7")
      | ds -> Alcotest.failf "expected 1 dump, got %d" (List.length ds))

(* --- dumps from the real pipeline ---------------------------------------- *)

let test_dump_on_plan_timeout () =
  with_obs (fun () ->
      let captured = ref [] in
      Obs.Event.set_dump_sink (fun d -> captured := d :: !captured);
      let db = tpch 0.1 in
      let p = Middleware.prepare_text db Queries.query1_text in
      (try
         ignore
           (Middleware.execute ~budget:10 p (Partition.unified p.Middleware.tree));
         Alcotest.fail "tiny budget must time out"
       with Middleware.Plan_timeout _ -> ());
      match !captured with
      | [ d ] ->
          Alcotest.(check string) "reason" "plan-timeout" d.Obs.Event.reason;
          Alcotest.(check bool)
            "the timeout event itself is in the ring" true
            (List.exists
               (fun (e : Obs.Event.t) ->
                 e.Obs.Event.name = "middleware.plan_timeout"
                 && e.Obs.Event.level = Obs.Event.Error)
               d.Obs.Event.dumped)
      | ds -> Alcotest.failf "expected 1 dump, got %d" (List.length ds))

let test_dump_on_breaker_open () =
  with_obs (fun () ->
      let captured = ref [] in
      Obs.Event.set_dump_sink (fun d -> captured := d :: !captured);
      let db = tpch 0.1 in
      let backend =
        B.create
          ~faults:(B.faults ~midstream_weight:0.0 1.0)
          ~retry:{ B.default_retry with B.max_retries = 3 }
          ~breaker:{ B.failure_threshold = 2; cooldown_ms = 1000.0 }
          db
      in
      (try ignore (B.execute backend (R.Sql_parser.parse supplier_q))
       with B.Backend_error _ | B.Circuit_open _ -> ());
      let reasons = List.map (fun d -> d.Obs.Event.reason) !captured in
      Alcotest.(check bool)
        "breaker-open dump fired" true
        (List.mem "breaker-open" reasons);
      Alcotest.(check bool)
        "warn fault events recorded" true
        (List.exists
           (fun (e : Obs.Event.t) -> e.Obs.Event.name = "backend.fault")
           (Obs.Event.events ())))

let test_deterministic_sequence () =
  let run () =
    install_test_clock ();
    Obs.Span.reset ();
    Obs.Metrics.reset ();
    Obs.Event.reset ();
    Obs.Control.with_enabled true (fun () ->
        let db = tpch 0.1 in
        let backend =
          B.create
            ~faults:(B.faults ~seed:7 0.8)
            ~retry:{ B.default_retry with B.max_retries = 4 }
            db
        in
        (try ignore (B.execute backend (R.Sql_parser.parse supplier_q))
         with B.Backend_error _ | B.Circuit_open _ -> ());
        List.map
          (fun (e : Obs.Event.t) ->
            ( e.Obs.Event.seq,
              e.Obs.Event.ts_ns,
              Obs.Event.level_name e.Obs.Event.level,
              e.Obs.Event.name,
              List.map
                (fun (k, v) -> (k, Obs.Attr.value_to_string v))
                e.Obs.Event.attrs ))
          (Obs.Event.events ()))
  in
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.reset ();
      Obs.Metrics.reset ();
      Obs.Event.reset ();
      Obs.Clock.use_default ())
    (fun () ->
      let a = run () and b = run () in
      Alcotest.(check bool) "some events were emitted" true (a <> []);
      Alcotest.(check bool)
        "identical seed, clock => identical event sequence" true (a = b))

(* --- GC telemetry --------------------------------------------------------- *)

let test_span_gc_deltas () =
  with_obs (fun () ->
      (* fake GC source: every reading adds 100 minor words, 10 major
         words, 1 compaction *)
      let minor = ref 0.0 and major = ref 0.0 and compactions = ref 0 in
      Obs.Span.set_gc_source (fun () ->
          minor := !minor +. 100.0;
          major := !major +. 10.0;
          incr compactions;
          (!minor, !major, !compactions));
      Obs.Span.with_span "outer" (fun () ->
          Obs.Span.with_span "inner" (fun () -> ()));
      let span name =
        List.find
          (fun (s : Obs.Span.t) -> s.Obs.Span.name = name)
          (Obs.Span.spans ())
      in
      (* outer: open reading 1, close reading 4 -> 3 deltas; inner: open
         reading 2, close reading 3 -> 1 delta *)
      Alcotest.(check (float 1e-9)) "outer minor delta" 300.0
        (span "outer").Obs.Span.gc_minor_words;
      Alcotest.(check (float 1e-9)) "inner minor delta" 100.0
        (span "inner").Obs.Span.gc_minor_words;
      Alcotest.(check (float 1e-9)) "outer major delta" 30.0
        (span "outer").Obs.Span.gc_major_words;
      Alcotest.(check int) "outer compactions" 3
        (span "outer").Obs.Span.gc_compactions;
      let prof = Obs.Profile.capture () in
      let node =
        List.find
          (fun n -> n.Obs.Profile.name = "outer")
          prof.Obs.Profile.roots
      in
      (* outer's own delta already spans the inner interval, so the
         profile node carries it without double-counting *)
      Alcotest.(check (float 1e-9))
        "profile aggregates include descendants" 300.0
        node.Obs.Profile.minor_words)

(* --- anomaly detector ----------------------------------------------------- *)

let test_qerror () =
  Alcotest.(check (float 1e-9)) "perfect" 1.0 (Obs.Diagnose.qerror ~est:5.0 ~act:5.0);
  Alcotest.(check (float 1e-9)) "overestimate" 8.0
    (Obs.Diagnose.qerror ~est:80.0 ~act:10.0);
  Alcotest.(check (float 1e-9)) "underestimate symmetric" 8.0
    (Obs.Diagnose.qerror ~est:10.0 ~act:80.0);
  Alcotest.(check (float 1e-9)) "clamped below one" 4.0
    (Obs.Diagnose.qerror ~est:4.0 ~act:0.0)

let sample ?(node = 0) ?(op = "scan") ?(est_rows = -1.0) ?(act_rows = -1)
    ?(est_cost = -1.0) ?(act_cost = -1) ?(spills = 0) stream =
  {
    Obs.Diagnose.d_stream = stream;
    d_node = node;
    d_op = op;
    d_est_rows = est_rows;
    d_act_rows = act_rows;
    d_est_cost = est_cost;
    d_act_cost = act_cost;
    d_spills = spills;
  }

let test_findings () =
  let samples =
    [
      (* rows off by 64x, cost fine *)
      sample "S1" ~node:1 ~est_rows:640.0 ~act_rows:10 ~est_cost:100.0
        ~act_cost:100;
      (* within threshold *)
      sample "S1" ~node:2 ~est_rows:30.0 ~act_rows:10;
      (* missing actuals: skipped *)
      sample "S2" ~node:3 ~est_rows:1e6;
    ]
  in
  let fs = Obs.Diagnose.findings samples in
  Alcotest.(check int) "one finding" 1 (List.length fs);
  let f = List.hd fs in
  Alcotest.(check string) "stream" "S1" f.Obs.Diagnose.f_stream;
  Alcotest.(check int) "node" 1 f.Obs.Diagnose.f_node;
  Alcotest.(check (float 1e-9)) "qerr" 64.0 f.Obs.Diagnose.f_qerr;
  Alcotest.(check bool) "rows metric" true (f.Obs.Diagnose.f_metric = Obs.Diagnose.Rows);
  with_obs (fun () ->
      Obs.Diagnose.emit_findings fs;
      Alcotest.(check (option int))
        "one warn event per finding" (Some 1)
        (Obs.Metrics.counter_value "events.warn"))

let test_findings_sorted () =
  let samples =
    [
      sample "S1" ~node:1 ~est_rows:50.0 ~act_rows:10;
      sample "S1" ~node:2 ~est_rows:1000.0 ~act_rows:10;
    ]
  in
  match Obs.Diagnose.findings samples with
  | [ a; b ] ->
      Alcotest.(check int) "worst first" 2 a.Obs.Diagnose.f_node;
      Alcotest.(check int) "then milder" 1 b.Obs.Diagnose.f_node
  | fs -> Alcotest.failf "expected 2 findings, got %d" (List.length fs)

let suite =
  [
    Alcotest.test_case "ring wraparound" `Quick test_ring_wraparound;
    Alcotest.test_case "level filtering" `Quick test_level_filtering;
    Alcotest.test_case "disabled is silent" `Quick test_disabled_is_silent;
    Alcotest.test_case "dump sink" `Quick test_dump_sink;
    Alcotest.test_case "dump on plan timeout" `Quick test_dump_on_plan_timeout;
    Alcotest.test_case "dump on breaker open" `Quick test_dump_on_breaker_open;
    Alcotest.test_case "deterministic sequence" `Quick test_deterministic_sequence;
    Alcotest.test_case "span GC deltas" `Quick test_span_gc_deltas;
    Alcotest.test_case "q-error" `Quick test_qerror;
    Alcotest.test_case "findings" `Quick test_findings;
    Alcotest.test_case "findings sorted" `Quick test_findings_sorted;
  ]
