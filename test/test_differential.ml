(* Differential safety net for the typed-IR executor: for every plan of
   Query 1, both SQL styles, the production paths (materialized,
   streaming, and resilient under injected faults) must produce XML
   byte-identical to the same plan executed through the seed AST
   interpreter ([Executor.run_legacy]) and tagged directly — and must
   never charge more work than the seed did. *)

open Silkroute
module R = Relational

let tpch scale = Tpch.Gen.generate (Tpch.Gen.config scale)

(* The reference: each stream through the legacy interpreter, tagged
   straight from the materialized relations. *)
let legacy_xml_and_work db tree plan opts =
  let streams = Sql_gen.streams db tree plan opts in
  let work = ref 0 in
  let pairs =
    List.map
      (fun s ->
        let rel, st = R.Executor.run_legacy_with_stats db s.Sql_gen.query in
        work := !work + st.R.Executor.work;
        (s, rel))
      streams
  in
  (Tagger.to_string tree pairs, !work)

let opts_of style = { Sql_gen.style; labels = None }

let test_all_plans_both_styles () =
  let db = tpch 0.1 in
  let p = Middleware.prepare_text db Queries.query1_text in
  let tree = p.Middleware.tree in
  List.iter
    (fun style ->
      let sname =
        match style with
        | Sql_gen.Outer_join -> "outer-join"
        | Sql_gen.Outer_union -> "outer-union"
      in
      List.iter
        (fun mask ->
          let plan = Partition.of_mask tree mask in
          let legacy, legacy_work =
            legacy_xml_and_work db tree plan (opts_of style)
          in
          let label what = Printf.sprintf "%s mask %d: %s" sname mask what in
          let e = Middleware.execute ~style p plan in
          Alcotest.(check string)
            (label "materialized XML = legacy")
            legacy
            (Middleware.xml_string_of p e);
          if e.Middleware.work > legacy_work then
            Alcotest.failf "%s (new %d > seed %d)"
              (label "materialized work exceeds seed")
              e.Middleware.work legacy_work;
          let se = Middleware.execute_streaming ~style p plan in
          let s_work = se.Middleware.s_work in
          Alcotest.(check string)
            (label "streaming XML = legacy")
            legacy
            (Middleware.xml_string_of_streaming p se);
          if s_work > legacy_work then
            Alcotest.failf "%s (new %d > seed %d)"
              (label "streaming work exceeds seed")
              s_work legacy_work)
        (Partition.all_masks tree))
    [ Sql_gen.Outer_join; Sql_gen.Outer_union ]

(* Resilient path vs the legacy reference at fault rates 0 and 0.3:
   retries and degradations may fire, the bytes may not change. *)
let test_all_plans_resilient () =
  let db = tpch 0.05 in
  let p = Middleware.prepare_text db Queries.query1_text in
  let tree = p.Middleware.tree in
  let faults_seen = ref 0 in
  List.iter
    (fun rate ->
      List.iter
        (fun mask ->
          let plan = Partition.of_mask tree mask in
          let legacy, _ =
            legacy_xml_and_work db tree plan (opts_of Sql_gen.Outer_join)
          in
          let backend =
            R.Backend.create
              ~faults:(R.Backend.faults ~seed:14 rate)
              ~retry:
                { R.Backend.default_retry with R.Backend.max_retries = 8 }
              db
          in
          let r = Middleware.execute_resilient ~backend p plan in
          faults_seen :=
            !faults_seen + r.Middleware.r_resilience.Middleware.r_faults;
          Alcotest.(check string)
            (Printf.sprintf "rate %.1f mask %d: resilient XML = legacy" rate
               mask)
            legacy
            (Middleware.xml_string_of_streaming p r.Middleware.r_streaming))
        (Partition.all_masks tree))
    [ 0.0; 0.3 ];
  Alcotest.(check bool) "faults actually fired at rate 0.3" true
    (!faults_seen > 0)

let suite =
  [
    Alcotest.test_case "all plans, both styles, mat + streaming = legacy"
      `Slow test_all_plans_both_styles;
    Alcotest.test_case "all plans, resilient at fault rates 0/0.3 = legacy"
      `Slow test_all_plans_resilient;
  ]
