(* The query engine: scans, joins (incl. left outer and OR-expansion),
   unions, sorting, three-valued WHERE, budget/timeout, work metering. *)

open Relational

let i n = Value.Int n
let s x = Value.String x

let mkdb () =
  let db = Database.create () in
  Database.add_table db
    (Schema.table "R" ~key:[ "a" ]
       [ Schema.column "a" Value.TInt; Schema.column "b" Value.TString ]);
  Database.add_table db
    (Schema.table "S" ~key:[ "c" ]
       [ Schema.column "c" Value.TInt; Schema.column "d" Value.TInt;
         Schema.column "e" Value.TString ]);
  Database.load db "R" [ [| i 1; s "one" |]; [| i 2; s "two" |]; [| i 3; s "three" |] ];
  Database.load db "S"
    [ [| i 10; i 1; s "x" |]; [| i 11; i 1; s "y" |]; [| i 12; i 2; s "z" |] ];
  db

let run db text = Executor.run db (Sql_parser.parse text)

let test_scan_project () =
  let r = run (mkdb ()) "SELECT r.b AS b FROM R AS r" in
  Alcotest.(check int) "3 rows" 3 (Relation.cardinality r);
  Alcotest.(check int) "1 col" 1 (Relation.arity r)

let test_where_filter () =
  let r = run (mkdb ()) "SELECT r.a AS a FROM R AS r WHERE (r.a >= 2)" in
  Alcotest.(check int) "2 rows" 2 (Relation.cardinality r)

let test_inner_join () =
  let r = run (mkdb ())
      "SELECT r.a AS a, q.c AS c FROM R AS r, S AS q WHERE (r.a = q.d)" in
  Alcotest.(check int) "3 matches" 3 (Relation.cardinality r)

let test_left_outer_join_pads () =
  let r = run (mkdb ())
      "SELECT r.a AS a, q.c AS c FROM R AS r LEFT OUTER JOIN S AS q ON (r.a = q.d) ORDER BY a, c" in
  Alcotest.(check int) "3 matches + 1 pad" 4 (Relation.cardinality r);
  (* row for a=3 has NULL c *)
  let padded =
    List.filter (fun t -> Value.is_null t.(1)) (Relation.rows r)
  in
  Alcotest.(check int) "one padded row" 1 (List.length padded);
  Alcotest.(check bool) "pad is a=3" true (Value.equal (List.hd padded).(0) (i 3))

let test_left_outer_join_residual_condition () =
  (* equi key + residual: only S rows with e='x' count as matches *)
  let r = run (mkdb ())
      "SELECT r.a AS a, q.c AS c FROM R AS r LEFT OUTER JOIN S AS q ON ((r.a = q.d) AND (q.e = 'x'))" in
  Alcotest.(check int) "1 match + 2 pads" 3 (Relation.cardinality r)

let test_or_expansion_join () =
  (* the disjunctive ON shape that unified outer-join plans produce *)
  let r = run (mkdb ())
      "SELECT r.a AS a, q.c AS c FROM R AS r LEFT OUTER JOIN S AS q \
       ON (((q.e = 'x') AND (r.a = q.d)) OR ((q.e = 'z') AND (r.a = q.d)))" in
  (* a=1 matches c=10; a=2 matches c=12; a=3 padded *)
  Alcotest.(check int) "rows" 3 (Relation.cardinality r)

let test_union_all () =
  let r = run (mkdb ())
      "(SELECT r.a AS k FROM R AS r) UNION ALL (SELECT q.c AS k FROM S AS q)" in
  Alcotest.(check int) "3 + 3" 6 (Relation.cardinality r)

let test_union_arity_mismatch () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (run (mkdb ())
         "(SELECT r.a AS k FROM R AS r) UNION ALL (SELECT q.c AS k, q.d AS d FROM S AS q)");
       false
     with Invalid_argument _ -> true)

let test_order_by_with_nulls () =
  let r = run (mkdb ())
      "SELECT r.a AS a, q.c AS c FROM R AS r LEFT OUTER JOIN S AS q ON (r.a = q.d) ORDER BY c, a" in
  (match Relation.rows r with
  | first :: _ -> Alcotest.(check bool) "null c first" true (Value.is_null first.(1))
  | [] -> Alcotest.fail "empty");
  Alcotest.(check bool) "sorted" true
    (Relation.is_sorted_by [| 1; 0 |] r)

let test_order_by_desc () =
  let r = run (mkdb ()) "SELECT r.a AS a FROM R AS r ORDER BY a DESC" in
  match Relation.rows r with
  | a :: _ -> Alcotest.(check bool) "3 first" true (Value.equal a.(0) (i 3))
  | [] -> Alcotest.fail "empty"

let test_derived_table () =
  let r = run (mkdb ())
      "SELECT x.a AS a FROM (SELECT r.a AS a FROM R AS r WHERE (r.a >= 2)) AS x" in
  Alcotest.(check int) "2 rows" 2 (Relation.cardinality r)

let test_dual_select () =
  let r = run (mkdb ()) "SELECT 1 AS one, 'x' AS x" in
  Alcotest.(check int) "one row" 1 (Relation.cardinality r)

let test_three_valued_where () =
  let db = mkdb () in
  Database.add_table db
    (Schema.table "N" ~key:[ "k" ]
       [ Schema.column "k" Value.TInt; Schema.column ~nullable:true "v" Value.TInt ]);
  Database.load db "N" [ [| i 1; i 5 |]; [| i 2; Value.Null |] ];
  let r = run db "SELECT n.k AS k FROM N AS n WHERE (n.v = 5)" in
  Alcotest.(check int) "null row filtered" 1 (Relation.cardinality r);
  let r = run db "SELECT n.k AS k FROM N AS n WHERE (n.v IS NULL)" in
  Alcotest.(check int) "is null finds it" 1 (Relation.cardinality r)

let test_ambiguous_column () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (run (mkdb ()) "SELECT a AS a FROM R AS r, R AS r2 WHERE (r.a = r2.a)");
       false
     with Executor.Ambiguous_column "a" -> true)

let test_budget_timeout () =
  let db = mkdb () in
  Alcotest.(check bool) "tiny budget trips" true
    (try
       ignore (Executor.run ~budget:2 db
                 (Sql_parser.parse "SELECT r.a AS a FROM R AS r, S AS q WHERE (r.a = q.d)"));
       false
     with Executor.Timeout -> true)

let test_stats_metering () =
  let db = mkdb () in
  let _, st =
    Executor.run_with_stats db
      (Sql_parser.parse "SELECT r.a AS a FROM R AS r ORDER BY a")
  in
  Alcotest.(check int) "scanned" 3 st.Executor.scanned;
  Alcotest.(check bool) "sorted counted" true (st.Executor.sorted > 0);
  Alcotest.(check bool) "work positive" true (st.Executor.work > 0)

let test_filter_charges_emit () =
  (* Regression for the eval_from leftover-conjunct path: every filter
     that drops rows must charge `Emit` per surviving row, the same as
     apply_filters, so predicate placement cannot change work counts.
     Single-table filter: emitted = survivors (filter) + output rows
     (projection) — exactly 2 per surviving row, never less. *)
  let db = mkdb () in
  let _, st =
    Executor.run_with_stats db
      (Sql_parser.parse "SELECT r.a AS a FROM R AS r WHERE (r.a >= 2)")
  in
  Alcotest.(check int) "scanned all" 3 st.Executor.scanned;
  Alcotest.(check int) "filter + projection each charge survivors" 4
    st.Executor.emitted;
  (* a filterless equivalent charges only the projection *)
  let _, st_all =
    Executor.run_with_stats db (Sql_parser.parse "SELECT r.a AS a FROM R AS r")
  in
  Alcotest.(check int) "no filter: projection only" 3 st_all.Executor.emitted

let test_unresolvable_conjunct_raises () =
  (* conjuncts that never become applicable are a resolution error, not a
     silent (and formerly uncharged) filter *)
  let db = mkdb () in
  Alcotest.(check bool) "raises Unresolved_column" true
    (try
       ignore
         (Executor.run db
            (Sql_parser.parse "SELECT r.a AS a FROM R AS r WHERE (z.q = 1)"));
       false
     with Expr.Unresolved_column _ -> true)

let test_spill_accounting () =
  (* a tiny sort buffer forces spill passes on any non-trivial sort *)
  let db = mkdb () in
  let profile = { Executor.sort_buffer = 8; byte_div = 4 } in
  let _, st =
    Executor.run_with_stats ~profile db
      (Sql_parser.parse "SELECT r.a AS a, r.b AS b FROM R AS r ORDER BY a")
  in
  Alcotest.(check bool) "spill passes recorded" true (st.Executor.spill_passes > 0);
  let _, st_big =
    Executor.run_with_stats db
      (Sql_parser.parse "SELECT r.a AS a, r.b AS b FROM R AS r ORDER BY a")
  in
  Alcotest.(check int) "no spill with default buffer" 0 st_big.Executor.spill_passes;
  Alcotest.(check bool) "spill costs work" true (st.Executor.work > st_big.Executor.work)

let test_cross_product_without_condition () =
  let r = run (mkdb ()) "SELECT r.a AS a, q.c AS c FROM R AS r, S AS q" in
  Alcotest.(check int) "3x3" 9 (Relation.cardinality r)

let test_join_chain_three_tables () =
  let db = mkdb () in
  Database.add_table db
    (Schema.table "T" ~key:[ "f" ]
       [ Schema.column "f" Value.TInt; Schema.column "g" Value.TInt ]);
  Database.load db "T" [ [| i 10; i 100 |]; [| i 12; i 200 |] ];
  let r = run db
      "SELECT r.b AS b, t.g AS g FROM R AS r, S AS q, T AS t \
       WHERE ((r.a = q.d) AND (q.c = t.f))" in
  (* S rows with c in {10,12}: (10,d=1),(12,d=2) -> 2 results *)
  Alcotest.(check int) "chained" 2 (Relation.cardinality r)

let test_null_join_keys_never_match () =
  (* SQL: NULL = NULL is UNKNOWN, so NULL keys never join *)
  let db = Database.create () in
  Database.add_table db
    (Schema.table "A" ~key:[]
       [ Schema.column ~nullable:true "x" Value.TInt ]);
  Database.add_table db
    (Schema.table "B" ~key:[]
       [ Schema.column ~nullable:true "y" Value.TInt ]);
  Database.load db "A" [ [| Value.Null |]; [| i 1 |] ];
  Database.load db "B" [ [| Value.Null |]; [| i 1 |] ];
  let inner = run db "SELECT a.x AS x, b.y AS y FROM A AS a, B AS b WHERE (a.x = b.y)" in
  Alcotest.(check int) "only 1=1 matches" 1 (Relation.cardinality inner);
  let outer =
    run db "SELECT a.x AS x, b.y AS y FROM A AS a LEFT OUTER JOIN B AS b ON (a.x = b.y)"
  in
  (* NULL row of A is padded, 1 matches *)
  Alcotest.(check int) "pad + match" 2 (Relation.cardinality outer)

let test_empty_tables () =
  let db = mkdb () in
  Database.add_table db
    (Schema.table "E" ~key:[ "k" ] [ Schema.column "k" Value.TInt ]);
  Alcotest.(check int) "empty scan" 0
    (Relation.cardinality (run db "SELECT e.k AS k FROM E AS e"));
  Alcotest.(check int) "inner join with empty" 0
    (Relation.cardinality
       (run db "SELECT r.a AS a FROM R AS r, E AS e WHERE (r.a = e.k)"));
  Alcotest.(check int) "left join with empty pads all" 3
    (Relation.cardinality
       (run db "SELECT r.a AS a, e.k AS k FROM R AS r LEFT OUTER JOIN E AS e ON (r.a = e.k)"))

let test_self_join_aliases () =
  let r = run (mkdb ())
      "SELECT r1.a AS a, r2.a AS b FROM R AS r1, R AS r2 WHERE (r1.a < r2.a)" in
  Alcotest.(check int) "three pairs" 3 (Relation.cardinality r)

let suite =
  [
    Alcotest.test_case "scan + project" `Quick test_scan_project;
    Alcotest.test_case "NULL join keys never match" `Quick test_null_join_keys_never_match;
    Alcotest.test_case "empty tables" `Quick test_empty_tables;
    Alcotest.test_case "self join" `Quick test_self_join_aliases;
    Alcotest.test_case "where filter" `Quick test_where_filter;
    Alcotest.test_case "inner join" `Quick test_inner_join;
    Alcotest.test_case "left outer join pads" `Quick test_left_outer_join_pads;
    Alcotest.test_case "left outer join residual" `Quick test_left_outer_join_residual_condition;
    Alcotest.test_case "OR-expansion join" `Quick test_or_expansion_join;
    Alcotest.test_case "union all" `Quick test_union_all;
    Alcotest.test_case "union arity mismatch" `Quick test_union_arity_mismatch;
    Alcotest.test_case "order by with NULLs" `Quick test_order_by_with_nulls;
    Alcotest.test_case "order by DESC" `Quick test_order_by_desc;
    Alcotest.test_case "derived table" `Quick test_derived_table;
    Alcotest.test_case "dual select" `Quick test_dual_select;
    Alcotest.test_case "three-valued WHERE" `Quick test_three_valued_where;
    Alcotest.test_case "ambiguous column" `Quick test_ambiguous_column;
    Alcotest.test_case "budget timeout" `Quick test_budget_timeout;
    Alcotest.test_case "work metering" `Quick test_stats_metering;
    Alcotest.test_case "filters charge emit" `Quick test_filter_charges_emit;
    Alcotest.test_case "unresolvable conjunct" `Quick test_unresolvable_conjunct_raises;
    Alcotest.test_case "spill accounting" `Quick test_spill_accounting;
    Alcotest.test_case "cross product" `Quick test_cross_product_without_condition;
    Alcotest.test_case "three-table join chain" `Quick test_join_chain_three_tables;
  ]

(* Property: hash join with OR-expansion agrees with a reference
   nested-loop evaluation on random small instances. *)
let prop_join_vs_nested_loop =
  let gen =
    QCheck.Gen.(
      pair
        (list_size (int_bound 12) (pair (int_bound 4) (int_bound 4)))
        (list_size (int_bound 12) (pair (int_bound 4) (int_bound 4))))
  in
  QCheck.Test.make ~name:"left join = reference semantics" ~count:100
    (QCheck.make gen) (fun (rs, ss) ->
      let db = Database.create () in
      Database.add_table db
        (Schema.table "A" ~key:[]
           [ Schema.column "x" Value.TInt; Schema.column "y" Value.TInt ]);
      Database.add_table db
        (Schema.table "B" ~key:[]
           [ Schema.column "u" Value.TInt; Schema.column "v" Value.TInt ]);
      Database.load db "A" (List.map (fun (x, y) -> [| i x; i y |]) rs);
      Database.load db "B" (List.map (fun (u, v) -> [| i u; i v |]) ss);
      let r = run db
          "SELECT a.x AS x, a.y AS y, b.u AS u, b.v AS v \
           FROM A AS a LEFT OUTER JOIN B AS b ON (a.x = b.u) ORDER BY x, y, u, v" in
      (* reference *)
      let expected =
        List.concat_map
          (fun (x, y) ->
            let matches = List.filter (fun (u, _) -> u = x) ss in
            if matches = [] then [ [| i x; i y; Value.Null; Value.Null |] ]
            else List.map (fun (u, v) -> [| i x; i y; i u; i v |]) matches)
          rs
      in
      Relation.equal_bag r
        (Relation.create [| "x"; "y"; "u"; "v" |] expected))

let props = [ prop_join_vs_nested_loop ]
