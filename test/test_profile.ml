(* The performance observatory: percentile estimation from fixed-bucket
   histograms, bucket-index binary search, and profile-tree invariants
   (self_ms >= 0 everywhere; self times sum back to the root's total) on
   nested, exception-unwound and unbalanced traces. *)

(* Deterministic clock: every reading advances by 1µs (same scheme as
   test_obs.ml), so durations are exact and the profile invariants can
   be checked with tight tolerances. *)
let install_test_clock () =
  let t = ref 0L in
  Obs.Clock.set_source (fun () ->
      t := Int64.add !t 1_000L;
      !t)

let with_obs f =
  install_test_clock ();
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.reset ();
      Obs.Metrics.reset ();
      Obs.Clock.use_default ())
    (fun () -> Obs.Control.with_enabled true f)

let feq = Alcotest.(check (float 1e-9))

(* --- percentiles -------------------------------------------------------- *)

let hist ?(bounds = [| 1.0; 4.0; 16.0 |]) xs =
  with_obs (fun () ->
      List.iter (fun x -> Obs.Metrics.observe ~bounds "h" x) xs;
      match Obs.Metrics.histogram_snapshot "h" with
      | Some h -> h
      | None -> Alcotest.fail "histogram missing")

let test_percentile_empty () =
  let h =
    { Obs.Metrics.bounds = [| 1.0; 2.0 |]; counts = [| 0; 0; 0 |];
      sum = 0.0; n = 0 }
  in
  Alcotest.(check (option (float 0.0))) "empty histogram" None
    (Obs.Metrics.percentile h 0.5);
  Alcotest.(check bool) "empty summary" true (Obs.Metrics.p50_90_99 h = None);
  (* bounds-less histograms have no information to interpolate *)
  let unbounded =
    { Obs.Metrics.bounds = [||]; counts = [| 3 |]; sum = 30.0; n = 3 }
  in
  Alcotest.(check (option (float 0.0))) "no bounds" None
    (Obs.Metrics.percentile unbounded 0.5)

let test_percentile_single () =
  (* one observation at 5.0 lands in (4,16]; every percentile must stay
     inside that bucket, and the median is its geometric midpoint *)
  let h = hist [ 5.0 ] in
  (match Obs.Metrics.percentile h 0.5 with
  | Some p ->
      feq "p50 is the geometric midpoint" 8.0 p
  | None -> Alcotest.fail "p50 missing");
  List.iter
    (fun q ->
      match Obs.Metrics.percentile h q with
      | Some p ->
          Alcotest.(check bool)
            (Printf.sprintf "q=%g inside bucket" q)
            true
            (p > 4.0 -. 1e-9 && p <= 16.0 +. 1e-9)
      | None -> Alcotest.fail "percentile missing")
    [ 0.01; 0.5; 0.9; 0.99; 1.0 ]

let test_percentile_overflow () =
  (* observations beyond the last bound: the estimate degrades to the
     last bound — a conservative lower bound, never an extrapolation *)
  let h = hist [ 100.0; 200.0; 1e9 ] in
  List.iter
    (fun q -> feq (Printf.sprintf "q=%g" q) 16.0
        (Option.get (Obs.Metrics.percentile h q)))
    [ 0.5; 0.99 ];
  (* mixed: p50 still interpolates in a real bucket, p99 hits overflow *)
  let h2 = hist [ 2.0; 3.0; 5.0; 1e9 ] in
  (match Obs.Metrics.percentile h2 0.5 with
  | Some p -> Alcotest.(check bool) "p50 in (1,4]" true (p > 1.0 && p <= 4.0)
  | None -> Alcotest.fail "p50 missing");
  feq "p99 reports last bound" 16.0
    (Option.get (Obs.Metrics.percentile h2 0.99))

let test_percentile_custom_bounds () =
  (* first bucket has no positive lower edge: interpolation is linear
     from zero, so five observations at ≤10 put the median at 5.0 *)
  let h = hist ~bounds:[| 10.0; 20.0 |] [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  feq "linear from zero" 5.0 (Option.get (Obs.Metrics.percentile h 0.5));
  (* log-linear inside a positive bucket: exact closed forms *)
  let h2 = hist ~bounds:[| 1.0; 10.0; 100.0 |] [ 0.5; 5.0; 20.0; 30.0 ] in
  feq "p50 at a bucket edge" 10.0
    (Option.get (Obs.Metrics.percentile h2 0.5));
  Alcotest.(check (float 1e-6)) "p90 log-interpolated"
    (10.0 ** 1.8)
    (Option.get (Obs.Metrics.percentile h2 0.9))

let test_bucket_index_matches_linear () =
  let linear bounds x =
    let nb = Array.length bounds in
    let rec idx i = if i >= nb || x <= bounds.(i) then i else idx (i + 1) in
    idx 0
  in
  let check_all bounds xs =
    List.iter
      (fun x ->
        Alcotest.(check int)
          (Printf.sprintf "x=%g" x)
          (linear bounds x)
          (Obs.Metrics.bucket_index bounds x))
      xs
  in
  let edges =
    Array.to_list Obs.Metrics.default_bounds
    |> List.concat_map (fun b -> [ b -. 1e-9; b; b +. 1e-9 ])
  in
  check_all Obs.Metrics.default_bounds
    ([ -1.0; 0.0; 0.5; 1e12; infinity ] @ edges);
  (* a deterministic pseudo-random sweep *)
  let state = ref 7 in
  let rand () =
    state := ((1103515245 * !state) + 12345) land 0x3FFFFFFF;
    float_of_int !state /. 64.0
  in
  check_all Obs.Metrics.default_bounds (List.init 500 (fun _ -> rand ()));
  check_all Obs.Metrics.duration_bounds (List.init 500 (fun _ -> rand () /. 1e6));
  (* degenerate bounds *)
  check_all [||] [ 0.0; 5.0 ];
  check_all [| 3.0 |] [ 2.0; 3.0; 4.0 ]

(* --- profile trees ------------------------------------------------------ *)

let rec sum_self (n : Obs.Profile.node) =
  List.fold_left
    (fun acc c -> acc +. sum_self c)
    n.Obs.Profile.self_ms
    (Obs.Profile.children n)

let rec assert_nonneg (n : Obs.Profile.node) =
  Alcotest.(check bool)
    (n.Obs.Profile.name ^ ": self_ms >= 0")
    true
    (n.Obs.Profile.self_ms >= 0.0);
  Alcotest.(check bool)
    (n.Obs.Profile.name ^ ": self <= total")
    true
    (n.Obs.Profile.self_ms <= n.Obs.Profile.total_ms +. 1e-9);
  List.iter assert_nonneg (Obs.Profile.children n)

let check_invariants (t : Obs.Profile.t) =
  List.iter
    (fun (root : Obs.Profile.node) ->
      assert_nonneg root;
      feq
        (root.Obs.Profile.name ^ ": self times sum to root total")
        root.Obs.Profile.total_ms (sum_self root))
    t.Obs.Profile.roots

let test_profile_nested () =
  with_obs (fun () ->
      Obs.Span.with_span "root" (fun () ->
          Obs.Span.with_span "a" (fun () ->
              Obs.Span.with_span "leaf" (fun () -> ());
              Obs.Span.with_span "leaf" (fun () -> ()));
          Obs.Span.with_span "b" (fun () -> ()));
      let t = Obs.Profile.capture () in
      check_invariants t;
      Alcotest.(check int) "one root" 1 (List.length t.Obs.Profile.roots);
      let root = List.hd t.Obs.Profile.roots in
      feq "grand total = root total" root.Obs.Profile.total_ms
        t.Obs.Profile.total_ms;
      let a =
        List.find
          (fun (n : Obs.Profile.node) -> n.Obs.Profile.name = "a")
          (Obs.Profile.children root)
      in
      let leaf = List.hd (Obs.Profile.children a) in
      Alcotest.(check int) "two leaf calls folded into one node" 2
        leaf.Obs.Profile.calls;
      (* test clock: every span interval is exactly 1µs per enclosed
         reading, so the leaf node's total is exactly 2 × 0.001 ms *)
      feq "leaf total" 0.002 leaf.Obs.Profile.total_ms;
      feq "leaf self = total (no children)" leaf.Obs.Profile.total_ms
        leaf.Obs.Profile.self_ms)

let test_profile_attr_sums () =
  with_obs (fun () ->
      Obs.Span.with_span "op" ~attrs:[ Obs.Attr.int "rows" 10 ] (fun () ->
          Obs.Span.add "work" (Obs.Attr.Int 100);
          Obs.Span.add "bytes" (Obs.Attr.Int 7));
      Obs.Span.with_span "op" ~attrs:[ Obs.Attr.int "rows" 5 ] (fun () ->
          Obs.Span.add "work" (Obs.Attr.Int 50);
          (* non-integer and unknown attrs must be ignored, not summed *)
          Obs.Span.add "rows" (Obs.Attr.String "not-a-count");
          Obs.Span.add "other" (Obs.Attr.Int 999));
      let t = Obs.Profile.capture () in
      let op = List.hd t.Obs.Profile.roots in
      Alcotest.(check int) "calls" 2 op.Obs.Profile.calls;
      Alcotest.(check int) "rows summed" 15 op.Obs.Profile.rows;
      Alcotest.(check int) "work summed" 150 op.Obs.Profile.work;
      Alcotest.(check int) "bytes summed" 7 op.Obs.Profile.bytes)

let test_profile_exception_unwound () =
  with_obs (fun () ->
      (try
         Obs.Span.with_span "root" (fun () ->
             Obs.Span.with_span "a" (fun () ->
                 Obs.Span.with_span "deep" (fun () -> failwith "boom")))
       with Failure _ -> ());
      (* a sibling trace after the unwind *)
      Obs.Span.with_span "root" (fun () ->
          Obs.Span.with_span "b" (fun () -> ()));
      let t = Obs.Profile.capture () in
      check_invariants t;
      Alcotest.(check int) "both runs folded into one root" 1
        (List.length t.Obs.Profile.roots);
      Alcotest.(check int) "root calls" 2
        (List.hd t.Obs.Profile.roots).Obs.Profile.calls)

let test_profile_unbalanced () =
  with_obs (fun () ->
      (* multiple roots with repeated names, interleaved depths *)
      Obs.Span.with_span "x" (fun () ->
          Obs.Span.with_span "y" (fun () ->
              Obs.Span.with_span "y" (fun () -> ())));
      Obs.Span.with_span "z" (fun () -> ());
      Obs.Span.with_span "x" (fun () -> ());
      let t = Obs.Profile.capture () in
      check_invariants t;
      Alcotest.(check (list string)) "roots in first-seen order" [ "x"; "z" ]
        (List.map
           (fun (n : Obs.Profile.node) -> n.Obs.Profile.name)
           t.Obs.Profile.roots);
      (* an orphan (parent filtered away) is promoted to a root rather
         than dropped or crashing the build *)
      let spans = Obs.Span.spans () in
      let partial =
        List.filter (fun (s : Obs.Span.t) -> s.Obs.Span.depth <> 1) spans
      in
      let t' = Obs.Profile.of_spans partial in
      Alcotest.(check bool) "orphan promoted to root" true
        (List.exists
           (fun (n : Obs.Profile.node) -> n.Obs.Profile.name = "y")
           t'.Obs.Profile.roots);
      List.iter assert_nonneg t'.Obs.Profile.roots)

let test_profile_unfinished_span () =
  with_obs (fun () ->
      (* capture *inside* an open span: the open span is charged zero,
         finished children keep their time, nothing goes negative *)
      Obs.Span.with_span "open" (fun () ->
          Obs.Span.with_span "done" (fun () -> ());
          let t = Obs.Profile.capture () in
          List.iter assert_nonneg t.Obs.Profile.roots;
          let root = List.hd t.Obs.Profile.roots in
          feq "open span charged zero total" 0.0 root.Obs.Profile.total_ms))

let test_profile_hot () =
  with_obs (fun () ->
      (* "op" appears under two different parents; hot merges by name *)
      Obs.Span.with_span "p1" (fun () ->
          Obs.Span.with_span "op" (fun () ->
              Obs.Span.add "work" (Obs.Attr.Int 1)));
      Obs.Span.with_span "p2" (fun () ->
          Obs.Span.with_span "op" (fun () ->
              Obs.Span.add "work" (Obs.Attr.Int 2));
          Obs.Span.with_span "op" (fun () -> ()));
      let t = Obs.Profile.capture () in
      let hot = Obs.Profile.hot ~top:100 t in
      let op =
        List.find (fun (n : Obs.Profile.node) -> n.Obs.Profile.name = "op") hot
      in
      Alcotest.(check int) "op merged across parents" 3 op.Obs.Profile.calls;
      Alcotest.(check int) "op work merged" 3 op.Obs.Profile.work;
      (* sorted by self time, descending *)
      let selfs = List.map (fun (n : Obs.Profile.node) -> n.Obs.Profile.self_ms) hot in
      Alcotest.(check (list (float 1e-9))) "descending self order"
        (List.sort (fun a b -> compare b a) selfs)
        selfs;
      Alcotest.(check int) "top-1 truncates" 1
        (List.length (Obs.Profile.hot ~top:1 t)))

(* --- jsonl rebasing ----------------------------------------------------- *)

let test_jsonl_rebased_starts () =
  with_obs (fun () ->
      Obs.Span.with_span "a" (fun () ->
          Obs.Span.with_span "b" (fun () -> ()));
      Obs.Span.with_span "c" (fun () -> ());
      let span_starts =
        List.filter_map
          (fun line ->
            let j = Obs.Json.parse line in
            if Obs.Json.member "type" j = Some (Obs.Json.String "span") then
              match Obs.Json.member "start_ns" j with
              | Some (Obs.Json.Int s) -> Some s
              | _ -> Alcotest.fail "span without int start_ns"
            else None)
          (Obs.Jsonl.to_lines ())
      in
      (match span_starts with
      | first :: _ -> Alcotest.(check int) "first span starts at 0" 0 first
      | [] -> Alcotest.fail "no spans exported");
      Alcotest.(check bool) "starts non-decreasing" true
        (List.sort compare span_starts = span_starts);
      (* profile records ride along in the export *)
      let profile_lines =
        List.filter
          (fun line ->
            Obs.Json.member "type" (Obs.Json.parse line)
            = Some (Obs.Json.String "profile"))
          (Obs.Jsonl.to_lines ())
      in
      Alcotest.(check int) "one profile record per name-path" 3
        (List.length profile_lines))

let suite =
  [
    Alcotest.test_case "percentile: empty histogram" `Quick
      test_percentile_empty;
    Alcotest.test_case "percentile: single observation" `Quick
      test_percentile_single;
    Alcotest.test_case "percentile: overflow bucket" `Quick
      test_percentile_overflow;
    Alcotest.test_case "percentile: custom bounds" `Quick
      test_percentile_custom_bounds;
    Alcotest.test_case "bucket_index matches linear scan" `Quick
      test_bucket_index_matches_linear;
    Alcotest.test_case "profile: nested trace invariants" `Quick
      test_profile_nested;
    Alcotest.test_case "profile: attribute sums" `Quick test_profile_attr_sums;
    Alcotest.test_case "profile: exception-unwound trace" `Quick
      test_profile_exception_unwound;
    Alcotest.test_case "profile: unbalanced traces and orphans" `Quick
      test_profile_unbalanced;
    Alcotest.test_case "profile: capture inside an open span" `Quick
      test_profile_unfinished_span;
    Alcotest.test_case "profile: hot-operator aggregation" `Quick
      test_profile_hot;
    Alcotest.test_case "jsonl: rebased monotonic starts + profile records"
      `Quick test_jsonl_rebased_starts;
  ]
