(* The resilient backend layer: fault injection / retry / breaker unit
   tests on Backend, Partition.split laws, and differential tests of
   Middleware.execute_resilient — byte-identical output versus the
   fault-free materialized path across fault rates, budget-forced
   degradation through the plan lattice, and exact (deterministic)
   resilience counters for a fixed seed. *)

open Silkroute
module R = Relational
module B = Relational.Backend

let supplier_q = "SELECT s.name AS n FROM Supplier AS s ORDER BY n"

(* > 32 rows at scale 0.3, so a scheduled mid-stream drop (after at most
   32 delivered rows) always fires *)
let part_q = "SELECT p.name AS n FROM Part AS p ORDER BY n"

let tpch scale = Tpch.Gen.generate (Tpch.Gen.config scale)
let parse = R.Sql_parser.parse

let retry ?(max_retries = 3) () = { B.default_retry with B.max_retries }

(* --- backend unit tests -------------------------------------------------- *)

let test_no_faults_passthrough () =
  let db = tpch 0.2 in
  let backend = B.create db in
  let q = parse supplier_q in
  let expected, _ = R.Executor.run_with_stats db q in
  let cur, _ = B.execute backend q in
  Alcotest.(check bool) "same rows" true
    (R.Relation.equal expected (R.Cursor.to_relation cur));
  let st = B.stats backend in
  Alcotest.(check int) "one submit" 1 st.B.submits;
  Alcotest.(check int) "one attempt" 1 st.B.attempts;
  Alcotest.(check int) "no retries" 0 st.B.retries;
  Alcotest.(check int) "no faults" 0 (B.total_faults st)

let test_transient_exhausts_bounded_retries () =
  let db = tpch 0.1 in
  let backend =
    B.create ~faults:(B.faults ~midstream_weight:0.0 1.0)
      ~retry:(retry ~max_retries:3 ()) db
  in
  (match B.execute backend (parse supplier_q) with
  | _ -> Alcotest.fail "certain transient faults must exhaust retries"
  | exception B.Backend_error { kind; attempt; _ } ->
      Alcotest.(check bool) "transient" true (kind = B.Transient);
      Alcotest.(check int) "failed on attempt max_retries+1" 4 attempt);
  let st = B.stats backend in
  Alcotest.(check int) "attempts" 4 st.B.attempts;
  Alcotest.(check int) "retries" 3 st.B.retries;
  Alcotest.(check int) "every attempt faulted" 4 st.B.faults_transient

let test_fatal_not_retried () =
  let db = tpch 0.1 in
  let backend =
    B.create ~faults:(B.faults ~fatal_weight:1.0 1.0) ~retry:(retry ()) db
  in
  (match B.execute backend (parse supplier_q) with
  | _ -> Alcotest.fail "fatal fault must escape"
  | exception B.Backend_error { kind; attempt; _ } ->
      Alcotest.(check bool) "fatal" true (kind = B.Fatal);
      Alcotest.(check int) "first attempt" 1 attempt);
  let st = B.stats backend in
  Alcotest.(check int) "no retries" 0 st.B.retries;
  Alcotest.(check int) "one fatal fault" 1 st.B.faults_fatal

let test_timeout_not_retried_wasted_work () =
  let db = tpch 0.3 in
  let budget = 50 in
  let backend = B.create ~budget db in
  (match B.execute backend (parse part_q) with
  | _ -> Alcotest.fail "tiny budget must time out"
  | exception B.Backend_error { kind; _ } ->
      Alcotest.(check bool) "timeout" true (kind = B.Timeout));
  let st = B.stats backend in
  Alcotest.(check int) "no retries" 0 st.B.retries;
  Alcotest.(check int) "one timeout" 1 st.B.timeouts;
  Alcotest.(check int) "wasted the budget" budget st.B.wasted_work

let test_backoff_exponential_within_jitter () =
  let db = tpch 0.1 in
  let backend =
    B.create ~faults:(B.faults ~midstream_weight:0.0 1.0)
      ~retry:
        {
          B.max_retries = 3;
          base_backoff_ms = 10.0;
          backoff_factor = 2.0;
          max_backoff_ms = 40.0;
          jitter = 0.25;
        }
      db
  in
  (try ignore (B.execute backend (parse supplier_q))
   with B.Backend_error _ -> ());
  let st = B.stats backend in
  (* slots 10, 20, 40 (capped), each jittered by ±25% *)
  Alcotest.(check bool)
    (Printf.sprintf "total backoff %.1f in [52.5, 87.5]" st.B.backoff_ms)
    true
    (st.B.backoff_ms >= 52.5 && st.B.backoff_ms <= 87.5)

let test_breaker_opens_and_rejects () =
  let db = tpch 0.1 in
  let backend =
    B.create
      ~faults:(B.faults ~midstream_weight:0.0 1.0)
      ~retry:(retry ~max_retries:6 ())
      ~breaker:{ B.failure_threshold = 2; cooldown_ms = 1000.0 }
      db
  in
  (match B.execute backend (parse supplier_q) with
  | _ -> Alcotest.fail "certain faults must exhaust retries"
  | exception B.Backend_error { kind; _ } ->
      Alcotest.(check bool) "transient" true (kind = B.Transient));
  let st = B.stats backend in
  Alcotest.(check bool)
    (Printf.sprintf "breaker opened (%d times)" st.B.breaker_opens)
    true (st.B.breaker_opens >= 2);
  Alcotest.(check bool)
    (Printf.sprintf "breaker rejected while open (%d)" st.B.breaker_rejections)
    true
    (st.B.breaker_rejections >= 1);
  (* rejections are waited out on the (virtual) clock, never counted as
     physical attempts *)
  Alcotest.(check int) "attempts = 1 + retries" (st.B.retries + 1) st.B.attempts

let test_midstream_drop_retried () =
  let db = tpch 0.3 in
  let backend =
    B.create ~faults:(B.faults ~midstream_weight:1.0 1.0)
      ~retry:(retry ~max_retries:2 ()) db
  in
  (match B.execute backend (parse part_q) with
  | _ -> Alcotest.fail "certain mid-stream drops must exhaust retries"
  | exception B.Backend_error { kind; rows_delivered; _ } ->
      Alcotest.(check bool) "transient" true (kind = B.Transient);
      Alcotest.(check bool) "dropped after some rows" true (rows_delivered > 0));
  let st = B.stats backend in
  Alcotest.(check int) "every attempt dropped mid-stream" 3
    st.B.faults_midstream;
  Alcotest.(check bool) "failed attempts' engine work is sunk" true
    (st.B.wasted_work > 0)

let test_midstream_recovery_accounting () =
  (* find a seed where the first attempt drops mid-stream and a retry
     succeeds; the winning attempt's rows must match the fault-free
     result exactly (per-attempt accounting restarts) *)
  let db = tpch 0.3 in
  let q = parse part_q in
  let expected, _ = R.Executor.run_with_stats db q in
  let rec hunt seed =
    if seed > 100 then Alcotest.fail "no recovering seed below 100"
    else
      let backend =
        B.create
          ~faults:(B.faults ~seed ~midstream_weight:1.0 0.5)
          ~retry:(retry ~max_retries:8 ())
          db
      in
      let rows = ref 0 in
      match B.execute backend ~on_attempt:(fun _ -> rows := 0)
              ~on_row:(fun _ -> incr rows) q
      with
      | cur, _ when (B.stats backend).B.retries > 0 ->
          Alcotest.(check bool) "rows match fault-free run" true
            (R.Relation.equal expected (R.Cursor.to_relation cur));
          Alcotest.(check int) "on_row counted only the winning attempt"
            (R.Relation.cardinality expected)
            !rows
      | _ -> hunt (seed + 1)
      | exception B.Backend_error _ -> hunt (seed + 1)
  in
  hunt 0

let test_injected_row_latency () =
  let db = tpch 0.2 in
  let backend = B.create ~faults:(B.faults ~row_latency_ms:2.0 0.0) db in
  let q = parse supplier_q in
  let cur, _ = B.execute backend q in
  let n = R.Relation.cardinality (R.Cursor.to_relation cur) in
  let st = B.stats backend in
  Alcotest.(check (float 1e-9))
    "2ms of virtual latency per delivered row"
    (2.0 *. float_of_int n)
    st.B.injected_latency_ms

let test_seed_determinism () =
  let db = tpch 0.2 in
  let run seed =
    let backend =
      B.create
        ~faults:(B.faults ~seed ~midstream_weight:0.5 0.4)
        ~retry:(retry ~max_retries:8 ())
        db
    in
    List.iter
      (fun q ->
        try ignore (B.execute backend (parse q)) with B.Backend_error _ -> ())
      [ supplier_q; part_q; supplier_q ];
    B.stats backend
  in
  (* some seeds draw no faults for this short sequence; find one that
     does, then demand bit-level reproducibility for it *)
  let rec hunt seed =
    if seed > 100 then Alcotest.fail "no faulting seed below 100"
    else
      let a = run seed in
      if B.total_faults a = 0 then hunt (seed + 1)
      else
        Alcotest.(check bool)
          (Printf.sprintf "identical stats for seed %d and same sequence" seed)
          true
          (a = run seed)
  in
  hunt 0

(* --- Partition.split ----------------------------------------------------- *)

let test_split_laws () =
  let db = tpch 0.1 in
  let p = Middleware.prepare_text db Queries.query1_text in
  let tree = p.Middleware.tree in
  let unified = Partition.unified tree in
  let rec check (f : Partition.fragment) =
    match Partition.split f with
    | None ->
        Alcotest.(check int) "single node has no internal edges" 0
          (List.length f.Partition.internal_edges);
        Alcotest.(check int) "single member" 1 (List.length f.Partition.members)
    | Some frags ->
        Alcotest.(check int) "split cuts exactly one edge"
          (List.length f.Partition.internal_edges - 1)
          (List.fold_left
             (fun acc g -> acc + List.length g.Partition.internal_edges)
             0 frags);
        Alcotest.(check (list int)) "members are partitioned, order kept"
          f.Partition.members
          (List.sort compare (List.concat_map (fun g -> g.Partition.members) frags));
        List.iter
          (fun (g : Partition.fragment) ->
            Alcotest.(check int) "root is the minimum member"
              (List.fold_left min max_int g.Partition.members)
              g.Partition.root)
          frags;
        let roots = List.map (fun g -> g.Partition.root) frags in
        Alcotest.(check (list int)) "fragments ordered by root"
          (List.sort compare roots) roots;
        List.iter check frags
  in
  List.iter check (Partition.fragments unified)

(* --- execute_resilient: differential across fault rates ------------------ *)

let small_views =
  [
    ("fragment", Queries.fragment_text);
    ( "mixed-content",
      {|view v { from Nation $n construct
          <nation>$n.name
            { from Region $r where $n.regionkey = $r.regionkey
              construct <region>$r.name</region> } </nation> }|} );
    ( "forest",
      {|view directory
        { from Supplier $s construct <supplier>$s.name</supplier> }
        { from Nation $n construct <nation>$n.name</nation> }|} );
  ]

let resilient_xml p r =
  Middleware.xml_string_of_streaming p r.Middleware.r_streaming

(* For one (view, mask, rate) point: resilient output byte-identical to
   the fault-free materialized path, and the resilience counters exactly
   reproducible for the fixed seed (zero fault activity at rate 0). *)
let check_resilient_point p mask rate =
  let plan = Partition.of_mask p.Middleware.tree mask in
  let label = Printf.sprintf "mask %d, rate %.1f" mask rate in
  let baseline = Middleware.xml_string_of p (Middleware.execute p plan) in
  let run () =
    let backend =
      B.create ~faults:(B.faults ~seed:14 rate)
        ~retry:(retry ~max_retries:8 ())
        p.Middleware.db
    in
    let r = Middleware.execute_resilient ~backend p plan in
    (resilient_xml p r, r.Middleware.r_resilience)
  in
  let xml, res = run () in
  Alcotest.(check string) (label ^ ": byte-identical XML") baseline xml;
  let xml2, res2 = run () in
  Alcotest.(check string) (label ^ ": reproducible XML") xml xml2;
  Alcotest.(check bool) (label ^ ": exact metrics for the fixed seed") true
    (res = res2);
  if rate = 0.0 then begin
    Alcotest.(check int) (label ^ ": no faults at rate 0") 0
      res.Middleware.r_faults;
    Alcotest.(check int) (label ^ ": no retries at rate 0") 0
      res.Middleware.r_retries;
    Alcotest.(check int) (label ^ ": no degradation at rate 0") 0
      res.Middleware.r_degraded
  end

let test_small_views_differential () =
  let db = Tpch.Gen.figure8_database () in
  List.iter
    (fun (_, text) ->
      let p = Middleware.prepare_text db text in
      List.iter
        (fun mask ->
          List.iter
            (fun rate -> check_resilient_point p mask rate)
            [ 0.0; 0.1; 0.3 ])
        (Partition.all_masks p.Middleware.tree))
    small_views

(* --- budget-forced degradation ------------------------------------------- *)

(* A budget between the largest single-node stream and the unified query
   forces the unified plan to degrade down the lattice while every leaf
   sub-query still fits. *)
let degradation_budget p =
  let fully =
    Middleware.execute p (Partition.fully_partitioned p.Middleware.tree)
  in
  2
  * List.fold_left
      (fun acc se -> max acc se.Middleware.se_stats.R.Executor.work)
      0 fully.Middleware.per_stream

let test_budget_forces_degradation () =
  let db = tpch 0.2 in
  let p = Middleware.prepare_text db Queries.query1_text in
  let unified = Partition.unified p.Middleware.tree in
  let baseline = Middleware.execute p unified in
  let budget = degradation_budget p in
  Alcotest.(check bool) "unified cannot fit the budget" true
    (baseline.Middleware.work > budget);
  let backend = B.create ~budget db in
  let r = Middleware.execute_resilient ~backend p unified in
  Alcotest.(check string) "byte-identical after degradation"
    (Middleware.xml_string_of p baseline)
    (resilient_xml p r);
  let res = r.Middleware.r_resilience in
  Alcotest.(check bool) "at least one stream degraded" true
    (res.Middleware.r_degraded >= 1);
  Alcotest.(check bool) "timeouts observed" true (res.Middleware.r_timeouts >= 1);
  Alcotest.(check bool) "sunk budget accounted as wasted work" true
    (res.Middleware.r_wasted_work >= budget)

let test_single_node_timeout_escapes () =
  (* nothing finer exists for a fully partitioned plan: a timeout must
     escape as Plan_timeout with the payload naming the fragment root *)
  let db = tpch 0.2 in
  let p = Middleware.prepare_text db Queries.query1_text in
  let backend = B.create ~budget:10 db in
  match
    Middleware.execute_resilient ~backend p
      (Partition.fully_partitioned p.Middleware.tree)
  with
  | _ -> Alcotest.fail "tiny budget must time out"
  | exception Middleware.Plan_timeout info ->
      Alcotest.(check bool) "names the fragment root" true
        (String.length info.Middleware.timeout_root > 0);
      Alcotest.(check bool) "carries SQL" true
        (String.length info.Middleware.timeout_sql > 0)

(* --- acceptance: q1/q2, all plans, faults + degradation ------------------- *)

(* The ISSUE's acceptance criterion: with a fixed seed and fault rate
   0.3, every one of the 2^|E| plans produces XML byte-identical to the
   fault-free path, with retries observed and at least one stream
   degraded across the sweep. *)
let acceptance_sweep text =
  let db = tpch 0.08 in
  let p = Middleware.prepare_text db text in
  let budget = degradation_budget p in
  let baseline =
    Middleware.xml_string_of p
      (Middleware.execute p (Partition.unified p.Middleware.tree))
  in
  let retries = ref 0 and degraded = ref 0 in
  List.iter
    (fun mask ->
      let plan = Partition.of_mask p.Middleware.tree mask in
      let backend =
        B.create
          ~faults:(B.faults ~seed:14 0.3)
          ~retry:(retry ~max_retries:8 ())
          ~budget db
      in
      let r = Middleware.execute_resilient ~backend p plan in
      Alcotest.(check string)
        (Printf.sprintf "mask %d: byte-identical under faults" mask)
        baseline (resilient_xml p r);
      retries := !retries + r.Middleware.r_resilience.Middleware.r_retries;
      degraded := !degraded + r.Middleware.r_resilience.Middleware.r_degraded)
    (Partition.all_masks p.Middleware.tree);
  Alcotest.(check bool) "retries fired across the sweep" true (!retries > 0);
  Alcotest.(check bool) "degradation fired across the sweep" true
    (!degraded > 0)

let test_acceptance_q1 () = acceptance_sweep Queries.query1_text
let test_acceptance_q2 () = acceptance_sweep Queries.query2_text

let suite =
  [
    Alcotest.test_case "backend: fault-free passthrough" `Quick
      test_no_faults_passthrough;
    Alcotest.test_case "backend: bounded retries on transient faults" `Quick
      test_transient_exhausts_bounded_retries;
    Alcotest.test_case "backend: fatal not retried" `Quick test_fatal_not_retried;
    Alcotest.test_case "backend: timeout not retried, budget sunk" `Quick
      test_timeout_not_retried_wasted_work;
    Alcotest.test_case "backend: exponential backoff within jitter" `Quick
      test_backoff_exponential_within_jitter;
    Alcotest.test_case "backend: breaker opens and rejects" `Quick
      test_breaker_opens_and_rejects;
    Alcotest.test_case "backend: mid-stream drops retried" `Quick
      test_midstream_drop_retried;
    Alcotest.test_case "backend: mid-stream recovery accounting" `Quick
      test_midstream_recovery_accounting;
    Alcotest.test_case "backend: injected row latency" `Quick
      test_injected_row_latency;
    Alcotest.test_case "backend: seed determinism" `Quick test_seed_determinism;
    Alcotest.test_case "partition: split laws" `Quick test_split_laws;
    Alcotest.test_case "resilient = materialized (small views x rates)" `Quick
      test_small_views_differential;
    Alcotest.test_case "budget forces degradation, output identical" `Quick
      test_budget_forces_degradation;
    Alcotest.test_case "single-node timeout escapes as Plan_timeout" `Quick
      test_single_node_timeout_escapes;
    Alcotest.test_case "acceptance: q1 all plans, faults + degradation" `Slow
      test_acceptance_q1;
    Alcotest.test_case "acceptance: q2 all plans, faults + degradation" `Slow
      test_acceptance_q2;
  ]
