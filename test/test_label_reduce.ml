(* Edge labeling (C1/C2 of Sec. 3.5) and view-tree reduction groups. *)

open Silkroute
module R = Relational

let prep text db = Middleware.prepare_text db text

let label_of p (sfi_p, sfi_c) =
  let t = p.Middleware.tree in
  let find sfi =
    (Array.to_list t.View_tree.nodes
    |> List.find (fun n -> n.View_tree.sfi = sfi))
      .View_tree.id
  in
  let pi = find sfi_p and ci = find sfi_c in
  let rec go i =
    if i >= Array.length t.View_tree.edges then Alcotest.fail "no such edge"
    else if t.View_tree.edges.(i) = (pi, ci) then p.Middleware.labels.(i)
    else go (i + 1)
  in
  go 0

let test_q1_labels () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.2) in
  let p = prep Queries.query1_text db in
  (* supplier -> name/nation/region: 1 (FD + guaranteed by FK chase) *)
  Alcotest.(check bool) "name 1" true (label_of p ([ 1 ], [ 1; 1 ]) = Xmlkit.Dtd.One);
  Alcotest.(check bool) "nation 1" true (label_of p ([ 1 ], [ 1; 2 ]) = Xmlkit.Dtd.One);
  Alcotest.(check bool) "region 1" true (label_of p ([ 1 ], [ 1; 3 ]) = Xmlkit.Dtd.One);
  (* supplier -> part: * (suppliers without parts; many parts) *)
  Alcotest.(check bool) "part *" true (label_of p ([ 1 ], [ 1; 4 ]) = Xmlkit.Dtd.Star);
  (* part -> order: * *)
  Alcotest.(check bool) "order *" true (label_of p ([ 1; 4 ], [ 1; 4; 2 ]) = Xmlkit.Dtd.Star);
  (* order -> orderkey/customer/nation: 1 *)
  List.iter
    (fun c ->
      Alcotest.(check bool) "order child 1" true
        (label_of p ([ 1; 4; 2 ], c) = Xmlkit.Dtd.One))
    [ [ 1; 4; 2; 1 ]; [ 1; 4; 2; 2 ]; [ 1; 4; 2; 3 ] ]

let test_q2_labels () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.2) in
  let p = prep Queries.query2_text db in
  Alcotest.(check bool) "part *" true (label_of p ([ 1 ], [ 1; 4 ]) = Xmlkit.Dtd.Star);
  Alcotest.(check bool) "order *" true (label_of p ([ 1 ], [ 1; 5 ]) = Xmlkit.Dtd.Star);
  Alcotest.(check bool) "part name 1" true
    (label_of p ([ 1; 4 ], [ 1; 4; 1 ]) = Xmlkit.Dtd.One)

let test_plus_label_with_declared_inclusion () =
  (* declare every supplier supplies something: C2 true, C1 false => '+' *)
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.2) in
  R.Database.declare_inclusion db
    { R.Schema.inc_table = "Supplier"; inc_cols = [ "suppkey" ];
      inc_ref_table = "PartSupp"; inc_ref_cols = [ "suppkey" ] };
  let p = prep Queries.query1_text db in
  Alcotest.(check bool) "part +" true (label_of p ([ 1 ], [ 1; 4 ]) = Xmlkit.Dtd.Plus)

let test_opt_label_with_nullable_fk () =
  (* a nullable FK keeps C1 (unique) but loses C2 (guaranteed) => '?' *)
  let db = R.Database.create () in
  R.Database.add_table db
    (R.Schema.table "A" ~key:[ "id" ]
       ~foreign_keys:
         [ { R.Schema.fk_cols = [ "b" ]; ref_table = "B"; ref_cols = [ "id" ] } ]
       [ R.Schema.column "id" R.Value.TInt;
         R.Schema.column ~nullable:true "b" R.Value.TInt ]);
  R.Database.add_table db
    (R.Schema.table "B" ~key:[ "id" ]
       [ R.Schema.column "id" R.Value.TInt; R.Schema.column "v" R.Value.TString ]);
  let p =
    prep
      {|view x { from A $a construct <a>
          { from B $b where $a.b = $b.id construct <b>$b.v</b> } </a> }|}
      db
  in
  Alcotest.(check bool) "? label" true (label_of p ([ 1 ], [ 1; 1 ]) = Xmlkit.Dtd.Opt)

let test_label_to_string () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.2) in
  let p = prep Queries.query1_text db in
  let s = Label.to_string p.Middleware.tree p.Middleware.labels in
  Alcotest.(check bool) "mentions star edge" true
    (let needle = "S1 -*-> S1.4" in
     let nh = String.length s and nn = String.length needle in
     let rec go i = i + nn <= nh && (String.sub s i nn = needle || go (i + 1)) in
     go 0)

(* --- reduction groups --------------------------------------------------- *)

let test_groups_unified_q1 () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.2) in
  let p = prep Queries.query1_text db in
  let plan = Partition.unified p.Middleware.tree in
  let frag = List.hd (Partition.fragments plan) in
  let groups =
    Reduce.groups_of_fragment p.Middleware.tree ~labels:(Some p.Middleware.labels) frag
  in
  (* 1-edges collapse: {S1,name,nation,region}, {part,name}, {order,+3 leaves} *)
  Alcotest.(check int) "three groups" 3 (List.length groups);
  let sizes = List.map (fun g -> List.length g.Reduce.g_members) groups in
  Alcotest.(check (list int)) "group sizes" [ 4; 2; 4 ] sizes

let test_groups_disabled_without_labels () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.2) in
  let p = prep Queries.query1_text db in
  let plan = Partition.unified p.Middleware.tree in
  let frag = List.hd (Partition.fragments plan) in
  let groups = Reduce.groups_of_fragment p.Middleware.tree ~labels:None frag in
  Alcotest.(check int) "all singletons" 10 (List.length groups)

let test_groups_respect_cut_edges () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.2) in
  let p = prep Queries.query1_text db in
  (* cut everything: no internal edges, so no grouping despite labels *)
  let plan = Partition.fully_partitioned p.Middleware.tree in
  List.iter
    (fun frag ->
      let groups =
        Reduce.groups_of_fragment p.Middleware.tree ~labels:(Some p.Middleware.labels) frag
      in
      Alcotest.(check int) "singleton" 1 (List.length groups))
    (Partition.fragments plan)

let test_fused_children_and_group_of () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.2) in
  let p = prep Queries.query1_text db in
  let tree = p.Middleware.tree in
  let plan = Partition.unified tree in
  let frag = List.hd (Partition.fragments plan) in
  let groups = Reduce.groups_of_fragment tree ~labels:(Some p.Middleware.labels) frag in
  let root_group = Reduce.group_of groups 0 in
  Alcotest.(check int) "root group root" 0 root_group.Reduce.g_root;
  (* S1's fused children are name, nation, region (3 of them) *)
  Alcotest.(check int) "fused children of S1" 3
    (List.length (Reduce.fused_children tree root_group 0));
  (* child groups of the root group: the part group *)
  Alcotest.(check int) "one child group" 1
    (List.length (Reduce.child_groups tree groups root_group))

let suite =
  [
    Alcotest.test_case "Query 1 labels" `Quick test_q1_labels;
    Alcotest.test_case "Query 2 labels" `Quick test_q2_labels;
    Alcotest.test_case "'+' via declared inclusion" `Quick test_plus_label_with_declared_inclusion;
    Alcotest.test_case "'?' via nullable FK" `Quick test_opt_label_with_nullable_fk;
    Alcotest.test_case "label rendering" `Quick test_label_to_string;
    Alcotest.test_case "groups: unified Query 1" `Quick test_groups_unified_q1;
    Alcotest.test_case "groups: disabled" `Quick test_groups_disabled_without_labels;
    Alcotest.test_case "groups: respect cut edges" `Quick test_groups_respect_cut_edges;
    Alcotest.test_case "fused children / group_of" `Quick test_fused_children_and_group_of;
  ]
