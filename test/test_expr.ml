(* Expressions: three-valued logic, resolution, analysis helpers. *)

open Relational

let header = [ (Some "t", "a"); (Some "t", "b"); (Some "u", "a") ]

let lookup (q, c) =
  let rec go i = function
    | [] -> None
    | (q', c') :: rest ->
        if (q = q' || q = None) && c = c' then Some i else go (i + 1) rest
  in
  go 0 header

let eval e t = Expr.eval (Expr.resolve lookup e) t
let pred e t = Expr.eval_pred (Expr.resolve lookup e) t

let row a b c = [| a; b; c |]
let i n = Value.Int n

let test_column_resolution () =
  let t = row (i 1) (i 2) (i 3) in
  Alcotest.(check bool) "qualified" true
    (Value.equal (eval (Expr.col ~qualifier:"u" "a") t) (i 3));
  Alcotest.(check bool) "unqualified unique" true
    (Value.equal (eval (Expr.col "b") t) (i 2))

let test_unresolved_column () =
  Alcotest.(check bool) "raises" true
    (try
       ignore (Expr.resolve lookup (Expr.col "zz"));
       false
     with Expr.Unresolved_column "zz" -> true)

let test_comparisons () =
  let t = row (i 1) (i 2) (i 3) in
  Alcotest.(check bool) "lt" true (pred Expr.(Cmp (Lt, col "a" ~qualifier:"t", col "b")) t);
  Alcotest.(check bool) "ge false" false
    (pred Expr.(Cmp (Ge, col ~qualifier:"t" "a", col "b")) t);
  Alcotest.(check bool) "neq" true
    (pred Expr.(Cmp (Neq, col ~qualifier:"t" "a", col "b")) t)

let test_three_valued_logic () =
  let t = row Value.Null (i 2) (i 3) in
  (* NULL comparison is UNKNOWN: the predicate rejects *)
  Alcotest.(check bool) "null = x rejects" false
    (pred Expr.(eq (col ~qualifier:"t" "a") (col "b")) t);
  (* UNKNOWN OR TRUE = TRUE *)
  Alcotest.(check bool) "unknown or true" true
    (pred Expr.(Or (eq (col ~qualifier:"t" "a") (col "b"),
                    Lit (Value.Bool true))) t);
  (* UNKNOWN AND FALSE = FALSE *)
  Alcotest.(check bool) "unknown and false" false
    (pred Expr.(And (eq (col ~qualifier:"t" "a") (col "b"),
                     Lit (Value.Bool false))) t);
  (* NOT UNKNOWN = UNKNOWN *)
  Alcotest.(check bool) "not unknown rejects" false
    (pred Expr.(Not (eq (col ~qualifier:"t" "a") (col "b"))) t)

let test_is_null () =
  let t = row Value.Null (i 2) (i 3) in
  Alcotest.(check bool) "is null" true (pred Expr.(Is_null (col ~qualifier:"t" "a")) t);
  Alcotest.(check bool) "is not null" true (pred Expr.(Is_not_null (col "b")) t)

let test_arithmetic () =
  let t = row (i 10) (i 3) (i 0) in
  let v e = eval e t in
  Alcotest.(check bool) "add" true
    (Value.equal (v Expr.(Arith (Add, col ~qualifier:"t" "a", col "b"))) (i 13));
  Alcotest.(check bool) "div by zero is null" true
    (Value.is_null (v Expr.(Arith (Div, col ~qualifier:"t" "a", col ~qualifier:"u" "a"))));
  Alcotest.(check bool) "null propagates" true
    (Value.is_null (v Expr.(Arith (Mul, Lit Value.Null, col "b"))));
  Alcotest.(check bool) "mixed int float" true
    (Value.equal (v Expr.(Arith (Mul, Lit (Value.Int 2), Lit (Value.Float 1.5))))
       (Value.Float 3.0));
  Alcotest.(check bool) "string concat" true
    (Value.equal (v Expr.(Arith (Add, Lit (Value.String "a"), Lit (Value.String "b"))))
       (Value.String "ab"))

let test_conjuncts_conjoin () =
  let e = Expr.(And (And (int 1, int 2), And (int 3, int 4))) in
  Alcotest.(check int) "flattens" 4 (List.length (Expr.conjuncts e));
  Alcotest.(check int) "roundtrip count" 4
    (List.length (Expr.conjuncts (Expr.conjoin (Expr.conjuncts e))));
  Alcotest.(check bool) "empty conjoin is TRUE" true
    (match Expr.conjoin [] with Expr.Lit (Value.Bool true) -> true | _ -> false)

let test_columns_and_equality_shape () =
  let e = Expr.(eq (col ~qualifier:"t" "a") (col ~qualifier:"u" "a")) in
  Alcotest.(check int) "two columns" 2 (List.length (Expr.columns e));
  Alcotest.(check bool) "recognized as column equality" true
    (Expr.as_column_equality e <> None);
  Alcotest.(check bool) "lt is not" true
    (Expr.as_column_equality Expr.(Cmp (Lt, col "a", col "b")) = None)

let test_to_sql () =
  Alcotest.(check string) "rendering" "((t.a = 1) AND (b IS NULL))"
    (Expr.to_sql Expr.(And (eq (col ~qualifier:"t" "a") (int 1), Is_null (col "b"))))

let suite =
  [
    Alcotest.test_case "column resolution" `Quick test_column_resolution;
    Alcotest.test_case "unresolved column" `Quick test_unresolved_column;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "three-valued logic" `Quick test_three_valued_logic;
    Alcotest.test_case "IS NULL" `Quick test_is_null;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "conjuncts/conjoin" `Quick test_conjuncts_conjoin;
    Alcotest.test_case "columns and equality shape" `Quick test_columns_and_equality_shape;
    Alcotest.test_case "to_sql" `Quick test_to_sql;
  ]

(* Property: conjoin . conjuncts preserves predicate semantics. *)
let gen_pred =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        map (fun b -> Expr.Lit (Value.Bool b)) bool;
        map2 (fun c n -> Expr.Cmp (Expr.Eq, Expr.col ~qualifier:"t" c, Expr.int n))
          (oneofl [ "a"; "b" ]) (int_bound 3);
      ]
  in
  let rec go depth =
    if depth = 0 then leaf
    else
      frequency
        [
          (2, leaf);
          (1, map2 (fun a b -> Expr.And (a, b)) (go (depth - 1)) (go (depth - 1)));
          (1, map2 (fun a b -> Expr.Or (a, b)) (go (depth - 1)) (go (depth - 1)));
          (1, map (fun a -> Expr.Not a) (go (depth - 1)));
        ]
  in
  go 3

let prop_conjuncts_semantics =
  QCheck.Test.make ~name:"conjoin(conjuncts e) ≡ e under eval" ~count:300
    (QCheck.make ~print:Expr.to_sql gen_pred) (fun e ->
      let t = row (i 1) (i 2) (i 3) in
      pred e t = pred (Expr.conjoin (Expr.conjuncts e)) t)

let props = [ prop_conjuncts_semantics ]
