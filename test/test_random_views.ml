(* Randomized end-to-end property: generate random RXL views over the
   TPC-H schema (joining along foreign keys in either direction), pick
   random partitions, and check every variant against the naive
   materialization.  This is the broadest soundness net in the suite —
   it exercises view-tree construction, labeling, reduction, SQL
   generation and the merge tagger on shapes no hand-written test
   covers. *)

open Silkroute
module R = Relational

(* Foreign-key graph of the TPC-H schema as (table, col) <-> (table, col)
   join opportunities. *)
let join_edges =
  List.concat_map
    (fun (t : R.Schema.table) ->
      List.filter_map
        (fun (fk : R.Schema.foreign_key) ->
          match (fk.fk_cols, fk.ref_cols) with
          | [ c ], [ rc ] -> Some ((t.name, c), (fk.ref_table, rc))
          | _ -> None (* composite FKs skipped for generation simplicity *))
        t.foreign_keys)
    Tpch.Gen.schema_tables

(* Tables reachable from [table] by one FK hop, with the join columns. *)
let neighbors table =
  List.concat_map
    (fun ((t1, c1), (t2, c2)) ->
      if t1 = table then [ (t2, c1, c2) ]
      else if t2 = table then [ (t1, c2, c1) ]
      else [])
    join_edges

let columns_of table =
  R.Schema.column_names
    (List.find (fun (t : R.Schema.table) -> t.name = table) Tpch.Gen.schema_tables)

(* Generate a random view.  The structure is a tree of blocks: each block
   binds one new table joined to its parent block's table, constructs one
   element with one text field and up to two child blocks. *)
let gen_view : Rxl.view QCheck.Gen.t =
  let open QCheck.Gen in
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "v%d" !counter
  in
  let rec gen_block parent_var parent_table depth =
    let nbrs = neighbors parent_table in
    if nbrs = [] then return None
    else
      let* table, pc, cc = oneofl nbrs in
      let var = fresh () in
      let* col = oneofl (columns_of table) in
      let* n_children =
        if depth <= 0 then return 0 else int_bound 2
      in
      let* children =
        List.init n_children (fun _ -> gen_block var table (depth - 1))
        |> flatten_l
      in
      let children = List.filter_map (fun c -> c) children in
      let tag = Printf.sprintf "e%s" var in
      return
        (Some
           (Rxl.Block
              {
                Rxl.from_ = [ Rxl.binding var table ];
                where_ =
                  [ Rxl.cond R.Expr.Eq (Rxl.field parent_var pc)
                      (Rxl.field var cc) ];
                construct =
                  [
                    Rxl.element tag
                      (Rxl.Text (Rxl.field var col) :: children);
                  ];
              }))
  in
  let* root_table =
    oneofl [ "Supplier"; "Customer"; "Orders"; "Part"; "Nation"; "LineItem" ]
  in
  counter := 0;
  let var = fresh () in
  let* col = oneofl (columns_of root_table) in
  let* n_children = int_range 0 3 in
  let* children =
    List.init n_children (fun _ -> gen_block var root_table 2) |> flatten_l
  in
  let children = List.filter_map (fun c -> c) children in
  return
    (Rxl.view "root"
       [
         Rxl.query
           [ Rxl.binding var root_table ]
           [ Rxl.element "top" (Rxl.Text (Rxl.field var col) :: children) ];
       ])

let print_view v = Rxl.to_string v

let db = lazy (Tpch.Gen.generate (Tpch.Gen.config 0.08))

let check_view (v, mask_seed) =
  let db = Lazy.force db in
  let p = Middleware.prepare db v in
  let truth = Middleware.materialize_naive p in
  let n_edges = View_tree.edge_count p.Middleware.tree in
  let masks =
    if n_edges = 0 then [ 0 ]
    else
      [ 0; (1 lsl n_edges) - 1; mask_seed land ((1 lsl n_edges) - 1) ]
  in
  List.for_all
    (fun mask ->
      let plan = Partition.of_mask p.Middleware.tree mask in
      List.for_all
        (fun (style, reduce) ->
          (* Sql_gen.Unsupported is the documented, cleanly-reported
             limitation (a join variable skipping intermediate blocks
             without being FD-determined); a random view may hit it, and
             rejecting such a plan is correct behaviour *)
          try
            let e = Middleware.execute ~style ~reduce p plan in
            Xmlkit.Xml.equal (Middleware.document_of p e) truth
          with Sql_gen.Unsupported _ -> true)
        [ (Sql_gen.Outer_join, false); (Sql_gen.Outer_join, true);
          (Sql_gen.Outer_union, false) ])
    masks

let prop_random_views =
  QCheck.Test.make ~name:"random TPC-H views: every plan = naive" ~count:60
    (QCheck.make
       ~print:(fun (v, m) -> Printf.sprintf "mask-seed %d\n%s" m (print_view v))
       QCheck.Gen.(pair gen_view (int_bound max_int)))
    check_view

let props = [ prop_random_views ]
