(* Relation: result sets, sorting, equality. *)

open Relational

let mk l = Array.of_list (List.map (fun n -> Value.Int n) l)

let r1 () = Relation.create [| "a"; "b" |] [ mk [ 1; 2 ]; mk [ 3; 4 ] ]

let test_create_checks_arity () =
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Relation.create: tuple arity 1, expected 2") (fun () ->
      ignore (Relation.create [| "a"; "b" |] [ mk [ 1 ] ]))

let test_basic_accessors () =
  let r = r1 () in
  Alcotest.(check int) "cardinality" 2 (Relation.cardinality r);
  Alcotest.(check int) "arity" 2 (Relation.arity r);
  Alcotest.(check (option int)) "column b" (Some 1) (Relation.column_index r "b");
  Alcotest.(check (option int)) "missing col" None (Relation.column_index r "z")

let test_column_index_exn () =
  Alcotest.(check int) "found" 0 (Relation.column_index_exn (r1 ()) "a");
  Alcotest.(check bool) "raises" true
    (try
       ignore (Relation.column_index_exn (r1 ()) "nope");
       false
     with Invalid_argument _ -> true)

let test_sort_stable_null_first () =
  let rows =
    [ mk [ 2; 0 ]; [| Value.Null; Value.Int 1 |]; mk [ 1; 2 ]; mk [ 1; 3 ] ]
  in
  let r = Relation.sort_by [| 0 |] (Relation.create [| "k"; "tag" |] rows) in
  (match Relation.rows r with
  | [ a; b; c; d ] ->
      Alcotest.(check bool) "null row first" true (Value.is_null a.(0));
      Alcotest.(check bool) "stable among equal keys" true
        (Value.equal b.(1) (Value.Int 2) && Value.equal c.(1) (Value.Int 3));
      Alcotest.(check bool) "largest last" true (Value.equal d.(0) (Value.Int 2))
  | _ -> Alcotest.fail "wrong row count");
  Alcotest.(check bool) "is_sorted_by" true (Relation.is_sorted_by [| 0 |] r)

let test_equality () =
  let a = Relation.create [| "x" |] [ mk [ 1 ]; mk [ 2 ] ] in
  let b = Relation.create [| "x" |] [ mk [ 2 ]; mk [ 1 ] ] in
  Alcotest.(check bool) "ordered equal fails" false (Relation.equal a b);
  Alcotest.(check bool) "bag equal holds" true (Relation.equal_bag a b);
  let c = Relation.create [| "y" |] [ mk [ 1 ]; mk [ 2 ] ] in
  Alcotest.(check bool) "different cols" false (Relation.equal_bag a c)

let test_wire_size () =
  let r = r1 () in
  Alcotest.(check int) "sum of tuple sizes"
    (List.fold_left (fun acc t -> acc + Tuple.wire_size t) 0 (Relation.rows r))
    (Relation.wire_size r)

let suite =
  [
    Alcotest.test_case "create checks arity" `Quick test_create_checks_arity;
    Alcotest.test_case "accessors" `Quick test_basic_accessors;
    Alcotest.test_case "column_index_exn" `Quick test_column_index_exn;
    Alcotest.test_case "stable sort, NULL first" `Quick test_sort_stable_null_first;
    Alcotest.test_case "equality variants" `Quick test_equality;
    Alcotest.test_case "wire size" `Quick test_wire_size;
  ]

let prop_sort_idempotent =
  let arb =
    QCheck.make
      QCheck.Gen.(
        map
          (fun rows -> List.map (fun l -> mk l) rows)
          (list_size (int_bound 20) (list_repeat 2 (int_bound 5))))
  in
  QCheck.Test.make ~name:"sort_by is idempotent" ~count:200 arb (fun rows ->
      let r = Relation.create [| "a"; "b" |] rows in
      let s1 = Relation.sort_by [| 0; 1 |] r in
      let s2 = Relation.sort_by [| 0; 1 |] s1 in
      Relation.equal s1 s2 && Relation.is_sorted_by [| 0; 1 |] s1)

let props = [ prop_sort_idempotent ]
