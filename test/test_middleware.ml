(* End-to-end middleware: strategies, timing/accounting, timeouts, and
   the exhaustive plan-correctness sweep (the core soundness result). *)

open Silkroute
module R = Relational

let setup ?(scale = 0.15) text =
  let db = Tpch.Gen.generate (Tpch.Gen.config scale) in
  (db, Middleware.prepare_text db text)

let test_materialize_strategies_agree () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.15) in
  let view = Queries.query1 () in
  let docs =
    List.map
      (fun strategy -> fst (Middleware.materialize db view strategy))
      [ Middleware.Unified; Middleware.Fully_partitioned; Middleware.Edges 37;
        Middleware.Greedy Planner.default_params ]
  in
  match docs with
  | d :: rest ->
      List.iteri
        (fun i d' ->
          Alcotest.(check bool) (Printf.sprintf "strategy %d agrees" i) true
            (Xmlkit.Xml.equal d d'))
        rest
  | [] -> Alcotest.fail "no docs"

let test_execution_accounting () =
  let db, p = setup Queries.query1_text in
  ignore db;
  let e = Middleware.execute p (Partition.unified p.Middleware.tree) in
  Alcotest.(check bool) "work positive" true (e.Middleware.work > 0);
  Alcotest.(check bool) "tuples positive" true (e.Middleware.tuples > 0);
  Alcotest.(check bool) "bytes positive" true (e.Middleware.bytes > 0);
  Alcotest.(check bool) "transfer positive" true (e.Middleware.transfer_ms > 0.0);
  Alcotest.(check bool) "total = query + transfer" true
    (abs_float
       (Middleware.total_wall_ms e
       -. (e.Middleware.query_wall_ms +. e.Middleware.transfer_ms))
    < 1e-9);
  Alcotest.(check int) "one SQL text" 1 (List.length e.Middleware.sql_texts)

let test_stream_counts_by_strategy () =
  let db, p = setup Queries.query1_text in
  ignore db;
  let count s = List.length (Middleware.execute p (Middleware.partition_of p s)).Middleware.streams in
  Alcotest.(check int) "unified 1" 1 (count Middleware.Unified);
  Alcotest.(check int) "fully partitioned 10" 10 (count Middleware.Fully_partitioned);
  Alcotest.(check int) "mask 511 = unified" 1 (count (Middleware.Edges 511))

let test_timeout_raised () =
  let db, p = setup ~scale:0.5 Queries.query1_text in
  ignore db;
  Alcotest.(check bool) "tiny budget times out" true
    (try
       ignore (Middleware.execute ~budget:10 p (Partition.unified p.Middleware.tree));
       false
     with Middleware.Plan_timeout _ -> true)

let test_profile_affects_work () =
  let db, p = setup ~scale:0.5 Queries.query1_text in
  ignore db;
  let plan = Partition.unified p.Middleware.tree in
  let default = (Middleware.execute p plan).Middleware.work in
  let tiny_buffer =
    (Middleware.execute ~profile:{ R.Executor.sort_buffer = 256; byte_div = 16 } p plan)
      .Middleware.work
  in
  Alcotest.(check bool) "smaller sort buffer costs more" true (tiny_buffer > default)

let test_more_streams_more_transfer_overhead () =
  let db, p = setup ~scale:0.5 Queries.query1_text in
  ignore db;
  let t strategy =
    (Middleware.execute p (Middleware.partition_of p strategy)).Middleware.transfer_ms
  in
  (* fully partitioned ships redundant ancestor keys over 10 streams *)
  Alcotest.(check bool) "fully partitioned ships more" true
    (t Middleware.Fully_partitioned > t Middleware.Unified)

let exhaustive_sweep text =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.12) in
  let p = Middleware.prepare_text db text in
  let truth = Middleware.materialize_naive p in
  List.iter
    (fun mask ->
      let plan = Partition.of_mask p.Middleware.tree mask in
      let e = Middleware.execute p plan in
      if not (Xmlkit.Xml.equal (Middleware.document_of p e) truth) then
        Alcotest.failf "plan %d (outer-join) diverges" mask;
      if mask mod 16 = 0 then begin
        (* a systematic subsample of the three variants *)
        let er = Middleware.execute ~reduce:true p plan in
        if not (Xmlkit.Xml.equal (Middleware.document_of p er) truth) then
          Alcotest.failf "plan %d (reduced) diverges" mask;
        let eu = Middleware.execute ~style:Sql_gen.Outer_union p plan in
        if not (Xmlkit.Xml.equal (Middleware.document_of p eu) truth) then
          Alcotest.failf "plan %d (outer-union) diverges" mask
      end)
    (Partition.all_masks p.Middleware.tree)

let test_exhaustive_q1 () = exhaustive_sweep Queries.query1_text
let test_exhaustive_q2 () = exhaustive_sweep Queries.query2_text

let test_custom_non_tpch_schema () =
  (* a bookstore schema exercises the pipeline away from TPC-H *)
  let db = R.Database.create () in
  R.Database.add_table db
    (R.Schema.table "Author" ~key:[ "aid" ]
       [ R.Schema.column "aid" R.Value.TInt; R.Schema.column "name" R.Value.TString ]);
  R.Database.add_table db
    (R.Schema.table "Book" ~key:[ "bid" ]
       ~foreign_keys:
         [ { R.Schema.fk_cols = [ "aid" ]; ref_table = "Author"; ref_cols = [ "aid" ] } ]
       [ R.Schema.column "bid" R.Value.TInt; R.Schema.column "aid" R.Value.TInt;
         R.Schema.column "title" R.Value.TString;
         R.Schema.column "price" R.Value.TFloat ]);
  let i n = R.Value.Int n and s x = R.Value.String x in
  R.Database.load db "Author" [ [| i 1; s "Knuth" |]; [| i 2; s "Dijkstra" |] ];
  R.Database.load db "Book"
    [ [| i 10; i 1; s "TAOCP"; R.Value.Float 99.0 |];
      [| i 11; i 1; s "Concrete Math"; R.Value.Float 50.0 |] ];
  let p =
    Middleware.prepare_text db
      {|view library { from Author $a construct
          <author><name>$a.name</name>
            { from Book $b where $a.aid = $b.aid
              construct <book>$b.title</book> } </author> }|}
  in
  let truth = Middleware.materialize_naive p in
  List.iter
    (fun mask ->
      let e = Middleware.execute p (Partition.of_mask p.Middleware.tree mask) in
      Alcotest.(check bool) (Printf.sprintf "mask %d" mask) true
        (Xmlkit.Xml.equal (Middleware.document_of p e) truth))
    (Partition.all_masks p.Middleware.tree);
  (* Dijkstra has no books but must appear *)
  let authors = Xmlkit.Xml.children_named (Xmlkit.Xml.root truth) "author" in
  Alcotest.(check int) "both authors" 2 (List.length authors)

let test_non_equi_join_condition () =
  (* a view with a filter condition (not a pure equi-join) *)
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.2) in
  let p =
    Middleware.prepare_text db
      {|view v { from Supplier $s construct <supplier><name>$s.name</name>
          { from PartSupp $ps, Part $p
            where $s.suppkey = $ps.suppkey, $ps.partkey = $p.partkey,
                  $ps.availqty >= 5000
            construct <bigpart>$p.name</bigpart> } </supplier> }|}
  in
  let truth = Middleware.materialize_naive p in
  List.iter
    (fun mask ->
      let e = Middleware.execute p (Partition.of_mask p.Middleware.tree mask) in
      Alcotest.(check bool) (Printf.sprintf "mask %d" mask) true
        (Xmlkit.Xml.equal (Middleware.document_of p e) truth))
    (Partition.all_masks p.Middleware.tree)

let test_with_syntax_agrees () =
  (* shipping the SQL as WITH clauses (paper footnote 1) must produce the
     same document as inline derived tables, for every plan *)
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.1) in
  let p = Middleware.prepare_text db Queries.query1_text in
  List.iter
    (fun mask ->
      let plan = Partition.of_mask p.Middleware.tree mask in
      let a = Middleware.execute p plan in
      let b = Middleware.execute ~sql_syntax:`With p plan in
      Alcotest.(check bool) (Printf.sprintf "mask %d" mask) true
        (Xmlkit.Xml.equal (Middleware.document_of p a) (Middleware.document_of p b));
      (* the WITH text really is different syntax *)
      if mask = 511 then
        Alcotest.(check bool) "uses WITH" true
          (String.length (List.hd b.Middleware.sql_texts) > 4
          && String.sub (List.hd b.Middleware.sql_texts) 0 4 = "WITH"))
    [ 0; 37; 255; 511 ]

let suite =
  [
    Alcotest.test_case "strategies agree" `Quick test_materialize_strategies_agree;
    Alcotest.test_case "WITH syntax agrees" `Quick test_with_syntax_agrees;
    Alcotest.test_case "execution accounting" `Quick test_execution_accounting;
    Alcotest.test_case "stream counts" `Quick test_stream_counts_by_strategy;
    Alcotest.test_case "plan timeout" `Quick test_timeout_raised;
    Alcotest.test_case "profile affects work" `Quick test_profile_affects_work;
    Alcotest.test_case "transfer overhead by streams" `Quick test_more_streams_more_transfer_overhead;
    Alcotest.test_case "exhaustive 512 plans (Query 1)" `Slow test_exhaustive_q1;
    Alcotest.test_case "exhaustive 512 plans (Query 2)" `Slow test_exhaustive_q2;
    Alcotest.test_case "non-TPC-H schema" `Quick test_custom_non_tpch_schema;
    Alcotest.test_case "non-equi-join condition" `Quick test_non_equi_join_condition;
  ]
