(* Test entry point: alcotest suites per module plus qcheck property
   suites bridged through qcheck-alcotest. *)

let qcheck name tests =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) tests)

let () =
  Alcotest.run "silkroute"
    [
      ("value", Test_value.suite);
      qcheck "value:props" Test_value.props;
      ("tuple", Test_tuple.suite);
      qcheck "tuple:props" Test_tuple.props;
      ("relation", Test_relation.suite);
      qcheck "relation:props" Test_relation.props;
      ("schema+database", Test_schema_db.suite);
      ("expr", Test_expr.suite);
      qcheck "expr:props" Test_expr.props;
      ("sql", Test_sql.suite);
      ("sql-roundtrip", Test_sql_roundtrip.suite);
      ("executor", Test_executor.suite);
      qcheck "executor:props" Test_executor.props;
      ("stats+cost", Test_stats_cost.suite);
      ("calibration", Test_calibration.suite);
      ("source+csv", Test_source_csv.suite);
      ("tpch", Test_tpch.suite);
      ("xml", Test_xml.suite);
      ("xpath", Test_xpath.suite);
      qcheck "xml:props" Test_xml.props;
      ("datalog", Test_datalog.suite);
      ("rxl", Test_rxl.suite);
      ("view-tree", Test_view_tree.suite);
      ("label+reduce", Test_label_reduce.suite);
      ("partition", Test_partition.suite);
      qcheck "partition:props" Test_partition.props;
      ("sql-gen", Test_sql_gen.suite);
      ("tagger", Test_tagger.suite);
      qcheck "tagger:props" Test_tagger.props;
      ("planner", Test_planner.suite);
      ("query3", Test_query3.suite);
      ("middleware", Test_middleware.suite);
      ("streaming", Test_streaming.suite);
      ("resilience", Test_resilience.suite);
      ("parallel", Test_parallel.suite);
      ("differential", Test_differential.suite);
      ("batch", Test_batch.suite);
      qcheck "batch:props" Test_batch.props;
      ("server", Test_server.suite);
      ("telemetry", Test_telemetry.suite);
      ("obs", Test_obs.suite);
      ("profile", Test_profile.suite);
      ("event+diagnose", Test_event.suite);
      qcheck "random-views:props" Test_random_views.props;
    ]
