(* Partitioning: edge subsets, fragments, masks (paper Sec. 3.2). *)

open Silkroute

let tree () =
  View_tree.of_view (Tpch.Gen.empty_database ()) (Queries.query1 ())

let test_plan_count () =
  let t = tree () in
  Alcotest.(check int) "2^9 plans" 512 (List.length (Partition.all_masks t))

let test_unified_one_fragment () =
  let t = tree () in
  let p = Partition.unified t in
  Alcotest.(check int) "one stream" 1 (Partition.stream_count p);
  let frag = List.hd (Partition.fragments p) in
  Alcotest.(check int) "all members" 10 (List.length frag.Partition.members);
  Alcotest.(check int) "root is S1" 0 frag.Partition.root;
  Alcotest.(check int) "all edges internal" 9 (List.length frag.Partition.internal_edges)

let test_fully_partitioned () =
  let t = tree () in
  let p = Partition.fully_partitioned t in
  Alcotest.(check int) "ten streams" 10 (Partition.stream_count p);
  List.iter
    (fun f ->
      Alcotest.(check int) "singleton" 1 (List.length f.Partition.members);
      Alcotest.(check (list (pair int int))) "no internal edges" []
        f.Partition.internal_edges)
    (Partition.fragments p)

let test_mask_round_trip () =
  let t = tree () in
  List.iter
    (fun mask ->
      Alcotest.(check int) "mask round trip" mask
        (Partition.to_mask (Partition.of_mask t mask)))
    [ 0; 1; 37; 255; 511 ]

let test_mask_bounds () =
  let t = tree () in
  Alcotest.(check bool) "negative rejected" true
    (try ignore (Partition.of_mask t (-1)); false with Invalid_argument _ -> true);
  Alcotest.(check bool) "overflow rejected" true
    (try ignore (Partition.of_mask t 512); false with Invalid_argument _ -> true)

let test_keep_cut_complementary () =
  let t = tree () in
  List.iter
    (fun mask ->
      let p = Partition.of_mask t mask in
      Alcotest.(check int) "kept + cut = 9" 9
        (List.length (Partition.kept_edges p) + List.length (Partition.cut_edges p)))
    [ 0; 5; 130; 511 ]

let test_stream_count_formula () =
  (* cutting k edges of a tree yields k+1 components *)
  let t = tree () in
  List.iter
    (fun mask ->
      let p = Partition.of_mask t mask in
      Alcotest.(check int) "components = cuts + 1"
        (List.length (Partition.cut_edges p) + 1)
        (Partition.stream_count p))
    (Partition.all_masks t)

let test_fragments_partition_nodes () =
  let t = tree () in
  List.iter
    (fun mask ->
      let p = Partition.of_mask t mask in
      let all =
        List.concat_map (fun f -> f.Partition.members) (Partition.fragments p)
      in
      Alcotest.(check (list int)) "every node exactly once"
        (List.init 10 (fun i -> i))
        (List.sort compare all))
    [ 0; 9; 73; 255; 511 ]

let test_fragment_roots_are_shallowest () =
  let t = tree () in
  List.iter
    (fun mask ->
      let p = Partition.of_mask t mask in
      List.iter
        (fun f ->
          let root = View_tree.node t f.Partition.root in
          (* the root's parent is outside the fragment *)
          match root.View_tree.parent with
          | None -> ()
          | Some pid ->
              Alcotest.(check bool) "parent outside" false
                (List.mem pid f.Partition.members))
        (Partition.fragments p))
    [ 3; 68; 300 ]

let test_keep_array_validation () =
  let t = tree () in
  Alcotest.(check bool) "wrong length rejected" true
    (try ignore (Partition.of_keep t [| true |]); false
     with Invalid_argument _ -> true)

let test_to_string () =
  let t = tree () in
  let p = Partition.of_mask t 1 in
  Alcotest.(check string) "first edge named" "{S1-S1.1}" (Partition.to_string p)

let suite =
  [
    Alcotest.test_case "512 plans" `Quick test_plan_count;
    Alcotest.test_case "unified plan" `Quick test_unified_one_fragment;
    Alcotest.test_case "fully partitioned plan" `Quick test_fully_partitioned;
    Alcotest.test_case "mask round trip" `Quick test_mask_round_trip;
    Alcotest.test_case "mask bounds" `Quick test_mask_bounds;
    Alcotest.test_case "kept/cut complementary" `Quick test_keep_cut_complementary;
    Alcotest.test_case "streams = cuts + 1" `Quick test_stream_count_formula;
    Alcotest.test_case "fragments partition nodes" `Quick test_fragments_partition_nodes;
    Alcotest.test_case "fragment roots shallowest" `Quick test_fragment_roots_are_shallowest;
    Alcotest.test_case "keep array validation" `Quick test_keep_array_validation;
    Alcotest.test_case "plan rendering" `Quick test_to_string;
  ]

let prop_fragments_connected =
  QCheck.Test.make ~name:"fragment members are connected" ~count:100
    (QCheck.make QCheck.Gen.(int_bound 511)) (fun mask ->
      let t = tree () in
      let p = Partition.of_mask t mask in
      List.for_all
        (fun f ->
          (* every non-root member's parent is in the fragment *)
          List.for_all
            (fun m ->
              m = f.Partition.root
              ||
              match (View_tree.node t m).View_tree.parent with
              | Some pid -> List.mem pid f.Partition.members
              | None -> false)
            f.Partition.members)
        (Partition.fragments p))

let props = [ prop_fragments_connected ]
