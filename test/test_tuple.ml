(* Tuple: positional helpers used by joins, sorts and the merge tagger. *)

open Relational

let mk l = Array.of_list (List.map (fun n -> Value.Int n) l)

let test_concat_project () =
  let t = Tuple.concat (mk [ 1; 2 ]) (mk [ 3 ]) in
  Alcotest.(check int) "arity" 3 (Tuple.arity t);
  let p = Tuple.project [| 2; 0 |] t in
  Alcotest.(check bool) "projected" true (Tuple.equal p (mk [ 3; 1 ]))

let test_all_null () =
  let t = Tuple.all_null 4 in
  Alcotest.(check int) "arity" 4 (Tuple.arity t);
  Alcotest.(check bool) "all null" true (Array.for_all Value.is_null t)

let test_compare_at_lexicographic () =
  let a = mk [ 1; 5; 9 ] and b = mk [ 1; 6; 0 ] in
  Alcotest.(check bool) "second position decides" true
    (Tuple.compare_at [| 0; 1 |] a b < 0);
  Alcotest.(check bool) "restricted to first: equal" true
    (Tuple.compare_at [| 0 |] a b = 0);
  Alcotest.(check bool) "reversed positions" true
    (Tuple.compare_at [| 2; 0 |] a b > 0)

let test_compare_at_null_first () =
  let a = [| Value.Null; Value.Int 1 |] and b = [| Value.Int 0; Value.Int 0 |] in
  Alcotest.(check bool) "null sorts first" true (Tuple.compare_at [| 0 |] a b < 0)

let test_hash_at_consistency () =
  let a = mk [ 1; 2; 3 ] and b = mk [ 9; 2; 3 ] in
  Alcotest.(check bool) "same key, same hash" true
    (Tuple.hash_at [| 1; 2 |] a = Tuple.hash_at [| 1; 2 |] b);
  Alcotest.(check bool) "equal_at" true (Tuple.equal_at [| 1; 2 |] a b);
  Alcotest.(check bool) "not equal_at full" false (Tuple.equal_at [| 0 |] a b)

let test_full_compare_shorter_first () =
  Alcotest.(check bool) "shorter first" true (Tuple.compare (mk [ 1 ]) (mk [ 1; 1 ]) < 0);
  Alcotest.(check bool) "content" true (Tuple.compare (mk [ 1; 2 ]) (mk [ 1; 3 ]) < 0)

let test_wire_size_sums () =
  let t = [| Value.Null; Value.String "ab" |] in
  Alcotest.(check int) "sum of field sizes"
    (Value.wire_size Value.Null + Value.wire_size (Value.String "ab"))
    (Tuple.wire_size t)

let suite =
  [
    Alcotest.test_case "concat and project" `Quick test_concat_project;
    Alcotest.test_case "all_null padding" `Quick test_all_null;
    Alcotest.test_case "compare_at lexicographic" `Quick test_compare_at_lexicographic;
    Alcotest.test_case "compare_at NULL first" `Quick test_compare_at_null_first;
    Alcotest.test_case "hash_at consistent with equal_at" `Quick test_hash_at_consistency;
    Alcotest.test_case "full compare" `Quick test_full_compare_shorter_first;
    Alcotest.test_case "wire size" `Quick test_wire_size_sums;
  ]

let arb_tuple =
  QCheck.make
    ~print:(fun t -> Tuple.to_string t)
    QCheck.Gen.(map Array.of_list (list_size (int_range 0 6) Test_value.gen_value))

let prop_project_identity =
  QCheck.Test.make ~name:"project on all positions is identity" ~count:300 arb_tuple
    (fun t ->
      let all = Array.init (Tuple.arity t) (fun i -> i) in
      Tuple.equal (Tuple.project all t) t)

let prop_compare_at_prefix =
  QCheck.Test.make ~name:"compare_at on empty positions is 0" ~count:300
    (QCheck.pair arb_tuple arb_tuple) (fun (a, b) -> Tuple.compare_at [||] a b = 0)

let props = [ prop_project_identity; prop_compare_at_prefix ]
