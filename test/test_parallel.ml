(* The domain fan-out: Domain_pool unit tests, then differential tests
   holding [execute_parallel] / [~domains] to the sequential paths —
   byte-identical XML and exact work/tuples/bytes/transfer parity for
   every plan in the 2^|E| lattice at domains ∈ {1, 2, 4}, resilience
   counters deterministic under faults at every domain count, and span
   coherence (parent-before-child, start order) when several domains
   trace at once. *)

open Silkroute
module R = Relational

(* --- Domain_pool -------------------------------------------------------- *)

let test_pool_results_in_order () =
  List.iter
    (fun domains ->
      R.Domain_pool.with_pool ~domains (fun pool ->
          let hs =
            List.init 20 (fun i -> R.Domain_pool.submit pool (fun () -> i * i))
          in
          let got = List.map R.Domain_pool.await hs in
          Alcotest.(check (list int))
            (Printf.sprintf "squares @%d domains" domains)
            (List.init 20 (fun i -> i * i))
            got))
    [ 1; 2; 4 ]

exception Boom of int

let test_pool_propagates_exceptions () =
  List.iter
    (fun domains ->
      R.Domain_pool.with_pool ~domains (fun pool ->
          let ok = R.Domain_pool.submit pool (fun () -> 41) in
          let bad = R.Domain_pool.submit pool (fun () -> raise (Boom 7)) in
          let ok2 = R.Domain_pool.submit pool (fun () -> 43) in
          Alcotest.(check int) "task before" 41 (R.Domain_pool.await ok);
          (match R.Domain_pool.await bad with
          | _ -> Alcotest.fail "await of a failed task must raise"
          | exception Boom 7 -> ()
          | exception e ->
              Alcotest.failf "wrong exception: %s" (Printexc.to_string e));
          (* a task exception must not kill the worker *)
          Alcotest.(check int) "task after" 43 (R.Domain_pool.await ok2)))
    [ 1; 2 ]

let test_pool_more_tasks_than_workers () =
  R.Domain_pool.with_pool ~domains:2 (fun pool ->
      let hs = List.init 100 (fun i -> R.Domain_pool.submit pool (fun () -> i)) in
      Alcotest.(check int) "sum" 4950
        (List.fold_left (fun acc h -> acc + R.Domain_pool.await h) 0 hs))

let test_pool_submit_after_shutdown () =
  let pool = R.Domain_pool.create ~domains:2 in
  let h = R.Domain_pool.submit pool (fun () -> 1) in
  Alcotest.(check int) "pre-shutdown task" 1 (R.Domain_pool.await h);
  R.Domain_pool.shutdown pool;
  match R.Domain_pool.submit pool (fun () -> 2) with
  | _ -> Alcotest.fail "submit after shutdown must raise"
  | exception Invalid_argument _ -> ()

let test_pool_rejects_zero_domains () =
  match R.Domain_pool.create ~domains:0 with
  | _ -> Alcotest.fail "domains:0 must be rejected"
  | exception Invalid_argument _ -> ()

(* --- cursor close -------------------------------------------------------- *)

let cols = [| "a" |]
let rows = List.init 5 (fun i -> [| R.Value.Int i |])

let test_cursor_close_semantics () =
  (* close mid-read: no more rows, idempotent *)
  let c = R.Cursor.spool (R.Cursor.of_list cols rows) in
  Alcotest.(check bool) "first row" true (R.Cursor.next c <> None);
  R.Cursor.close c;
  Alcotest.(check bool) "closed: no rows" true (R.Cursor.next c = None);
  R.Cursor.close c;
  Alcotest.(check bool) "double close harmless" true (R.Cursor.next c = None);
  (* close after full drain is also fine *)
  let c2 = R.Cursor.spool (R.Cursor.of_list cols rows) in
  Alcotest.(check int) "all rows" 5 (List.length (R.Cursor.to_list c2));
  R.Cursor.close c2

(* --- differential: parallel vs sequential -------------------------------- *)

(* One plan point: the fanned-out paths must match the sequential ones
   byte-for-byte on XML and exactly on deterministic accounting. *)
let check_point p mask domains =
  let plan = Partition.of_mask p.Middleware.tree mask in
  let label = Printf.sprintf "mask %d @%d domains" mask domains in
  let e = Middleware.execute p plan in
  let ep = Middleware.execute_parallel ~domains p plan in
  Alcotest.(check string)
    (label ^ ": byte-identical XML")
    (Middleware.xml_string_of p e)
    (Middleware.xml_string_of p ep);
  Alcotest.(check int) (label ^ ": work") e.Middleware.work ep.Middleware.work;
  Alcotest.(check int) (label ^ ": tuples") e.Middleware.tuples
    ep.Middleware.tuples;
  Alcotest.(check int) (label ^ ": bytes") e.Middleware.bytes
    ep.Middleware.bytes;
  Alcotest.(check (float 0.0))
    (label ^ ": transfer model")
    e.Middleware.transfer_ms ep.Middleware.transfer_ms;
  (* streaming fan-out against sequential streaming *)
  let se = Middleware.execute_streaming p plan in
  let sp = Middleware.execute_streaming ~domains p plan in
  Alcotest.(check string)
    (label ^ ": streaming byte-identical XML")
    (Middleware.xml_string_of_streaming p se)
    (Middleware.xml_string_of_streaming p sp);
  Alcotest.(check int)
    (label ^ ": streaming work")
    se.Middleware.s_work sp.Middleware.s_work;
  Alcotest.(check int)
    (label ^ ": streaming bytes")
    se.Middleware.s_bytes sp.Middleware.s_bytes

let domain_counts = [ 1; 2; 4 ]

(* Small view: every mask of the lattice at every domain count. *)
let test_fragment_all_masks_all_domains () =
  let db = Tpch.Gen.figure8_database () in
  let p = Middleware.prepare_text db Queries.fragment_text in
  List.iter
    (fun mask -> List.iter (fun d -> check_point p mask d) domain_counts)
    (Partition.all_masks p.Middleware.tree)

(* Q1/Q2: every one of the 2^|E| plans at 4 domains; 1 and 2 domains on
   a stride-4 subsample. *)
let exhaustive_sweep text =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.08) in
  let p = Middleware.prepare_text db text in
  List.iter
    (fun mask ->
      if mask mod 4 = 0 then
        List.iter (fun d -> check_point p mask d) domain_counts
      else check_point p mask 4)
    (Partition.all_masks p.Middleware.tree)

let test_exhaustive_q1 () = exhaustive_sweep Queries.query1_text
let test_exhaustive_q2 () = exhaustive_sweep Queries.query2_text

(* --- resilience under fan-out -------------------------------------------- *)

(* For each fault rate, the resilient path must produce byte-identical
   XML *and* bit-identical resilience counters at every domain count:
   per-stream backend forks make the fault draws independent of how
   streams interleave across domains. *)
let test_resilient_counters_deterministic () =
  let db = Tpch.Gen.figure8_database () in
  let p = Middleware.prepare_text db Queries.fragment_text in
  let truth =
    let e = Middleware.execute p (Partition.unified p.Middleware.tree) in
    Middleware.xml_string_of p e
  in
  List.iter
    (fun rate ->
      List.iter
        (fun mask ->
          let plan = Partition.of_mask p.Middleware.tree mask in
          let run domains =
            let backend =
              R.Backend.create
                ~faults:(R.Backend.faults ~seed:11 rate)
                ~retry:
                  { R.Backend.default_retry with R.Backend.max_retries = 8 }
                db
            in
            let r = Middleware.execute_resilient ~backend ~domains p plan in
            let xml =
              Middleware.xml_string_of_streaming p r.Middleware.r_streaming
            in
            (xml, r.Middleware.r_resilience)
          in
          let xml1, res1 = run 1 in
          Alcotest.(check string)
            (Printf.sprintf "rate %.1f mask %d: XML = fault-free truth" rate
               mask)
            truth xml1;
          List.iter
            (fun domains ->
              let xml, res = run domains in
              let label =
                Printf.sprintf "rate %.1f mask %d @%d domains" rate mask
                  domains
              in
              Alcotest.(check string) (label ^ ": XML") xml1 xml;
              Alcotest.(check bool)
                (label ^ ": identical resilience counters")
                true (res = res1))
            [ 2; 4 ])
        (Partition.all_masks p.Middleware.tree))
    [ 0.0; 0.3 ]

(* A work budget that the unified plan cannot meet forces degradation
   into finer fragments; fanned out, the degraded runs must still merge
   to the exact fault-free document and count the same degradations. *)
let test_degradation_under_fanout () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.1) in
  let p = Middleware.prepare_text db Queries.query1_text in
  let tree = p.Middleware.tree in
  let unified = Partition.unified tree in
  let baseline = Middleware.execute p unified in
  let truth = Middleware.xml_string_of p baseline in
  let fully = Middleware.execute p (Partition.fully_partitioned tree) in
  let budget =
    2
    * List.fold_left
        (fun acc se -> max acc se.Middleware.se_stats.R.Executor.work)
        0 fully.Middleware.per_stream
  in
  Alcotest.(check bool) "unified plan must exceed the budget" true
    (baseline.Middleware.work > budget);
  let run domains =
    let r = Middleware.execute_resilient ~budget ~domains p unified in
    ( Middleware.xml_string_of_streaming p r.Middleware.r_streaming,
      r.Middleware.r_resilience )
  in
  let xml1, res1 = run 1 in
  Alcotest.(check string) "degraded run matches fault-free truth" truth xml1;
  Alcotest.(check bool) "at least one stream degraded" true
    (res1.Middleware.r_degraded >= 1);
  List.iter
    (fun domains ->
      let xml, res = run domains in
      let label = Printf.sprintf "@%d domains" domains in
      Alcotest.(check string) (label ^ ": XML") xml1 xml;
      Alcotest.(check bool) (label ^ ": counters") true (res = res1))
    [ 2; 4 ]

(* --- observability coherence --------------------------------------------- *)

(* With tracing on and the plan fanned out over 4 domains, the span log
   must still be globally start-ordered with every parent logged before
   its children, and the multiset of span names must match a sequential
   traced run (same spans, merely interleaved). *)
let span_names () =
  List.sort compare (List.map (fun s -> s.Obs.Span.name) (Obs.Span.spans ()))

let test_spans_coherent_across_domains () =
  let db = Tpch.Gen.figure8_database () in
  let p = Middleware.prepare_text db Queries.fragment_text in
  let plan = Partition.fully_partitioned p.Middleware.tree in
  Obs.Control.with_enabled true (fun () ->
      Obs.Span.reset ();
      ignore (Middleware.execute p plan);
      let seq_names = span_names () in
      Obs.Span.reset ();
      ignore (Middleware.execute_parallel ~domains:4 p plan);
      let spans = Obs.Span.spans () in
      Alcotest.(check (list string))
        "same span multiset as sequential" seq_names (span_names ());
      let seen = Hashtbl.create 64 in
      List.fold_left
        (fun prev s ->
          Alcotest.(check bool) "log in start order" true
            (Int64.compare prev s.Obs.Span.start_ns <= 0);
          (match s.Obs.Span.parent with
          | None -> ()
          | Some parent ->
              Alcotest.(check bool)
                (Printf.sprintf "span %d: parent %d logged first"
                   s.Obs.Span.id parent)
                true (Hashtbl.mem seen parent));
          Hashtbl.replace seen s.Obs.Span.id ();
          s.Obs.Span.start_ns)
        Int64.min_int spans
      |> ignore;
      Obs.Span.reset ())

let suite =
  [
    Alcotest.test_case "pool: results in order" `Quick test_pool_results_in_order;
    Alcotest.test_case "pool: exception propagation" `Quick
      test_pool_propagates_exceptions;
    Alcotest.test_case "pool: 100 tasks on 2 workers" `Quick
      test_pool_more_tasks_than_workers;
    Alcotest.test_case "pool: submit after shutdown" `Quick
      test_pool_submit_after_shutdown;
    Alcotest.test_case "pool: rejects 0 domains" `Quick
      test_pool_rejects_zero_domains;
    Alcotest.test_case "cursor close semantics" `Quick
      test_cursor_close_semantics;
    Alcotest.test_case "fragment: all masks x domains {1,2,4}" `Quick
      test_fragment_all_masks_all_domains;
    Alcotest.test_case "exhaustive plans parallel = sequential (Q1)" `Slow
      test_exhaustive_q1;
    Alcotest.test_case "exhaustive plans parallel = sequential (Q2)" `Slow
      test_exhaustive_q2;
    Alcotest.test_case "resilient counters deterministic across domains"
      `Quick test_resilient_counters_deterministic;
    Alcotest.test_case "degradation under fan-out" `Quick
      test_degradation_under_fanout;
    Alcotest.test_case "spans coherent across domains" `Quick
      test_spans_coherent_across_domains;
  ]
