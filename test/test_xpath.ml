(* XPath-subset evaluator: parsing, axes, predicates, and use against a
   materialized paper view. *)

open Xmlkit

let doc () =
  Parse.parse
    {|<lib><shelf n="1"><book><title>A</title><year>1999</year></book>
       <book><title>B</title><year>2001</year></book></shelf>
       <shelf n="2"><book><title>C</title><year>2001</year></book></shelf></lib>|}

let titles d path = Xpath.select_text d path

let test_child_axis () =
  let d = doc () in
  Alcotest.(check int) "two shelves" 2 (Xpath.count d "/lib/shelf");
  Alcotest.(check int) "root only" 1 (Xpath.count d "/lib");
  Alcotest.(check int) "wrong root" 0 (Xpath.count d "/zzz")

let test_descendant_axis () =
  let d = doc () in
  Alcotest.(check int) "all books" 3 (Xpath.count d "//book");
  Alcotest.(check (list string)) "all titles" [ "A"; "B"; "C" ]
    (titles d "//book/title");
  Alcotest.(check int) "descendant under child" 3
    (Xpath.count d "/lib/shelf[1]//title" + Xpath.count d "/lib/shelf[2]//title")

let test_wildcard () =
  let d = doc () in
  Alcotest.(check int) "shelf children" 2 (Xpath.count d "/lib/*");
  Alcotest.(check int) "grandchildren" 3 (Xpath.count d "/lib/*/book")

let test_positional_predicate () =
  let d = doc () in
  Alcotest.(check (list string)) "first shelf titles" [ "A"; "B" ]
    (titles d "/lib/shelf[1]/book/title");
  Alcotest.(check (list string)) "second book of first shelf" [ "B" ]
    (titles d "/lib/shelf[1]/book[2]/title");
  Alcotest.(check int) "out of range" 0 (Xpath.count d "/lib/shelf[9]")

let test_child_value_predicate () =
  let d = doc () in
  Alcotest.(check (list string)) "books from 2001" [ "B"; "C" ]
    (titles d "//book[year='2001']/title");
  Alcotest.(check (list string)) "existence predicate" [ "A"; "B"; "C" ]
    (titles d "//book[title]/title");
  Alcotest.(check int) "no match" 0 (Xpath.count d "//book[year='1800']")

let test_exists () =
  let d = doc () in
  Alcotest.(check bool) "exists" true (Xpath.exists d "//book[title='C']");
  Alcotest.(check bool) "not exists" false (Xpath.exists d "//pamphlet")

let test_parse_errors () =
  List.iter
    (fun p ->
      Alcotest.(check bool) ("rejects " ^ p) true
        (try ignore (Xpath.parse p); false with Xpath.Parse_error _ -> true))
    [ ""; "lib"; "/"; "/lib["; "/lib[1"; "/lib[x='y" ]

let test_against_materialized_view () =
  (* extract fragments of the paper's Query 1 view, the usage scenario of
     the paper's introduction *)
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.3) in
  let p = Silkroute.Middleware.prepare_text db Silkroute.Queries.query1_text in
  let e =
    Silkroute.Middleware.execute ~reduce:true p
      (Silkroute.Partition.unified p.Silkroute.Middleware.tree)
  in
  let doc = Silkroute.Middleware.document_of p e in
  Alcotest.(check int) "one supplier element per supplier row"
    (Relational.Database.row_count db "Supplier")
    (Xpath.count doc "/suppliers/supplier");
  (* every part has exactly one name *)
  Alcotest.(check int) "part names = parts"
    (Xpath.count doc "//part")
    (Xpath.count doc "//part/name");
  (* fragment extraction by value *)
  match Xpath.select_text doc "/suppliers/supplier[1]/name" with
  | [ name ] ->
      Alcotest.(check bool) "first supplier findable by name" true
        (Xpath.exists doc (Printf.sprintf "//supplier[name='%s']" name))
  | _ -> Alcotest.fail "expected one name"

let suite =
  [
    Alcotest.test_case "child axis" `Quick test_child_axis;
    Alcotest.test_case "descendant axis" `Quick test_descendant_axis;
    Alcotest.test_case "wildcard" `Quick test_wildcard;
    Alcotest.test_case "positional predicate" `Quick test_positional_predicate;
    Alcotest.test_case "child value predicate" `Quick test_child_value_predicate;
    Alcotest.test_case "exists" `Quick test_exists;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "fragments of a materialized view" `Quick test_against_materialized_view;
  ]
