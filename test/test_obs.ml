(* The observability layer: span nesting/ordering, attribute capture,
   histogram bucketing, JSONL round-trips, and the middleware
   integration (per-stream stats, plan.edge spans, work-count
   neutrality). *)

open Silkroute
module R = Relational

(* Deterministic clock: every reading advances by 1µs, so span durations
   are exact and reproducible. *)
let install_test_clock () =
  let t = ref 0L in
  Obs.Clock.set_source (fun () ->
      t := Int64.add !t 1_000L;
      !t)

let with_obs f =
  install_test_clock ();
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.reset ();
      Obs.Metrics.reset ();
      Obs.Clock.use_default ())
    (fun () -> Obs.Control.with_enabled true f)

let find_spans name =
  List.filter (fun (s : Obs.Span.t) -> s.Obs.Span.name = name) (Obs.Span.spans ())

let attr_exn s key =
  match List.assoc_opt key (Obs.Span.attrs s) with
  | Some v -> v
  | None -> Alcotest.failf "span %s: missing attribute %s" s.Obs.Span.name key

(* --- spans -------------------------------------------------------------- *)

let test_span_nesting () =
  with_obs (fun () ->
      let r =
        Obs.Span.with_span "a" (fun () ->
            Obs.Span.with_span "b" (fun () -> ignore (Obs.Span.with_span "c" (fun () -> 1)));
            Obs.Span.with_span "d" (fun () -> 2))
      in
      Alcotest.(check int) "value returned" 2 r;
      let names = List.map (fun (s : Obs.Span.t) -> s.Obs.Span.name) (Obs.Span.spans ()) in
      Alcotest.(check (list string)) "pre-order" [ "a"; "b"; "c"; "d" ] names;
      let by_name n = List.hd (find_spans n) in
      Alcotest.(check (option int)) "a is root" None (by_name "a").Obs.Span.parent;
      Alcotest.(check (option int)) "b under a" (Some (by_name "a").Obs.Span.id)
        (by_name "b").Obs.Span.parent;
      Alcotest.(check (option int)) "c under b" (Some (by_name "b").Obs.Span.id)
        (by_name "c").Obs.Span.parent;
      Alcotest.(check (option int)) "d under a" (Some (by_name "a").Obs.Span.id)
        (by_name "d").Obs.Span.parent;
      Alcotest.(check int) "c depth" 2 (by_name "c").Obs.Span.depth;
      List.iter
        (fun (s : Obs.Span.t) ->
          Alcotest.(check bool) "finished" true s.Obs.Span.finished;
          Alcotest.(check bool) "positive duration" true
            (Obs.Span.duration_ms s > 0.0))
        (Obs.Span.spans ()))

let test_span_attrs () =
  with_obs (fun () ->
      Obs.Span.with_span "op" ~attrs:[ Obs.Attr.string "table" "Part" ]
        (fun () ->
          Obs.Span.add "rows" (Obs.Attr.Int 42);
          Obs.Span.add_list [ Obs.Attr.float "sel" 0.5; Obs.Attr.bool "ok" true ]);
      let s = List.hd (find_spans "op") in
      Alcotest.(check (list string)) "insertion order"
        [ "table"; "rows"; "sel"; "ok" ]
        (List.map fst (Obs.Span.attrs s));
      (match attr_exn s "rows" with
      | Obs.Attr.Int 42 -> ()
      | _ -> Alcotest.fail "rows attribute wrong");
      match attr_exn s "table" with
      | Obs.Attr.String "Part" -> ()
      | _ -> Alcotest.fail "table attribute wrong")

let test_span_exception_safety () =
  with_obs (fun () ->
      (try
         Obs.Span.with_span "outer" (fun () ->
             Obs.Span.with_span "inner" (fun () -> failwith "boom"))
       with Failure _ -> ());
      let outer = List.hd (find_spans "outer") in
      let inner = List.hd (find_spans "inner") in
      Alcotest.(check bool) "outer finished" true outer.Obs.Span.finished;
      Alcotest.(check bool) "inner finished" true inner.Obs.Span.finished;
      (* a fresh root opens cleanly after the unwind *)
      Obs.Span.with_span "next" (fun () -> ());
      Alcotest.(check (option int)) "next is root" None
        (List.hd (find_spans "next")).Obs.Span.parent)

let test_disabled_is_noop () =
  install_test_clock ();
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Obs.Control.set_enabled false;
  let r = Obs.Span.with_span "a" (fun () -> Obs.Metrics.incr "c"; 7) in
  Alcotest.(check int) "value returned" 7 r;
  Alcotest.(check int) "no spans" 0 (List.length (Obs.Span.spans ()));
  Alcotest.(check (option int)) "no counter" None (Obs.Metrics.counter_value "c");
  Obs.Clock.use_default ()

(* --- metrics ------------------------------------------------------------ *)

let test_counters_and_gauges () =
  with_obs (fun () ->
      Obs.Metrics.incr "hits";
      Obs.Metrics.incr ~by:4 "hits";
      Obs.Metrics.set_gauge "temp" 1.5;
      Obs.Metrics.set_gauge "temp" 2.5;
      Alcotest.(check (option int)) "counter" (Some 5)
        (Obs.Metrics.counter_value "hits");
      match Obs.Metrics.snapshot () with
      | [ ("hits", Obs.Metrics.SCounter 5); ("temp", Obs.Metrics.SGauge g) ] ->
          Alcotest.(check (float 1e-9)) "gauge keeps last" 2.5 g
      | _ -> Alcotest.fail "unexpected snapshot shape")

let test_histogram_buckets () =
  with_obs (fun () ->
      let bounds = [| 1.0; 10.0; 100.0 |] in
      (* bucket edges are inclusive upper bounds; beyond the last bound
         falls into the overflow bucket *)
      List.iter
        (fun x -> Obs.Metrics.observe ~bounds "h" x)
        [ 0.5; 1.0; 2.0; 10.0; 99.0; 100.5; 1e6 ];
      match Obs.Metrics.histogram_snapshot "h" with
      | None -> Alcotest.fail "histogram missing"
      | Some h ->
          Alcotest.(check (array int)) "bucket counts" [| 2; 2; 1; 2 |]
            h.Obs.Metrics.counts;
          Alcotest.(check int) "n" 7 h.Obs.Metrics.n;
          Alcotest.(check (float 1e-6)) "sum" 1000213.0 h.Obs.Metrics.sum)

(* --- json + jsonl ------------------------------------------------------- *)

let test_json_roundtrip () =
  let samples =
    [
      Obs.Json.Null;
      Obs.Json.Bool true;
      Obs.Json.Int (-42);
      Obs.Json.Float 1.0;
      Obs.Json.Float 3.25e-3;
      Obs.Json.String "quote\" slash\\ newline\n tab\t unicode é";
      Obs.Json.List [ Obs.Json.Int 1; Obs.Json.String "x"; Obs.Json.Null ];
      Obs.Json.Obj
        [
          ("a", Obs.Json.Int 1);
          ("nested", Obs.Json.Obj [ ("b", Obs.Json.List []) ]);
        ];
    ]
  in
  List.iter
    (fun v ->
      let s = Obs.Json.to_string v in
      Alcotest.(check bool)
        (Printf.sprintf "roundtrip %s" s)
        true
        (Obs.Json.parse s = v))
    samples;
  (* int/float distinction survives *)
  Alcotest.(check bool) "1 is Int" true (Obs.Json.parse "1" = Obs.Json.Int 1);
  Alcotest.(check bool) "1.0 is Float" true
    (Obs.Json.parse "1.0" = Obs.Json.Float 1.0);
  (* \u escapes incl. surrogate pairs *)
  Alcotest.(check bool) "u-escape" true
    (Obs.Json.parse {|"é"|} = Obs.Json.String "é");
  Alcotest.(check bool) "surrogate pair" true
    (Obs.Json.parse {|"😀"|} = Obs.Json.String "😀");
  (* malformed input fails *)
  List.iter
    (fun bad ->
      Alcotest.(check bool)
        (Printf.sprintf "rejects %s" bad)
        true
        (try
           ignore (Obs.Json.parse bad);
           false
         with Obs.Json.Parse_error _ -> true))
    [ "{"; "[1,"; "\"unterminated"; "1 2"; "tru"; "{\"a\" 1}" ]

let test_jsonl_export () =
  with_obs (fun () ->
      Obs.Span.with_span "root" ~attrs:[ Obs.Attr.int "n" 3 ] (fun () ->
          Obs.Span.with_span "child" (fun () -> ()));
      Obs.Metrics.incr ~by:9 "counted";
      Obs.Metrics.observe ~bounds:[| 1.0 |] "sized" 0.5;
      let lines = Obs.Jsonl.to_lines ~experiment:"exp1" () in
      (* 2 spans + 3 metrics (counted, sized, span.ms.* for both spans —
         which share one histogram per name) *)
      Alcotest.(check bool) "several lines" true (List.length lines >= 5);
      let parsed = List.map Obs.Json.parse lines in
      List.iter
        (fun j ->
          Alcotest.(check bool) "tagged with experiment" true
            (Obs.Json.member "experiment" j = Some (Obs.Json.String "exp1"));
          match Obs.Json.member "type" j with
          | Some (Obs.Json.String ("span" | "profile" | "metric")) -> ()
          | _ -> Alcotest.fail "bad type field")
        parsed;
      let root =
        List.find
          (fun j ->
            Obs.Json.member "name" j = Some (Obs.Json.String "root"))
          parsed
      in
      (match Obs.Json.member "attrs" root with
      | Some (Obs.Json.Obj [ ("n", Obs.Json.Int 3) ]) -> ()
      | _ -> Alcotest.fail "root attrs wrong");
      let counted =
        List.find
          (fun j ->
            Obs.Json.member "name" j = Some (Obs.Json.String "counted"))
          parsed
      in
      Alcotest.(check bool) "counter value" true
        (Obs.Json.member "value" counted = Some (Obs.Json.Int 9)))

(* --- pipeline integration ----------------------------------------------- *)

let setup ?(scale = 0.12) text =
  let db = Tpch.Gen.generate (Tpch.Gen.config scale) in
  (db, Middleware.prepare_text db text)

let test_greedy_plan_edge_spans () =
  with_obs (fun () ->
      let db, p = setup Queries.query1_text in
      let oracle = R.Cost.oracle db in
      let r =
        Planner.gen_plan db oracle p.Middleware.tree p.Middleware.labels
          Planner.default_params
      in
      let edge_spans = find_spans "plan.edge" in
      (* one span per considered edge: each evaluates exactly three
         fragment costs (combined, left, right), each a request or a
         cache hit *)
      Alcotest.(check int) "3 lookups per considered edge"
        (r.Planner.requests + r.Planner.cache_hits)
        (3 * List.length edge_spans);
      Alcotest.(check bool) "first round considers every edge" true
        (List.length edge_spans >= View_tree.edge_count p.Middleware.tree);
      List.iter
        (fun s ->
          (match attr_exn s "edge" with
          | Obs.Attr.String e ->
              Alcotest.(check bool) "edge names both endpoints" true
                (String.contains e '-')
          | _ -> Alcotest.fail "edge attr not a string");
          match attr_exn s "rel" with
          | Obs.Attr.Float _ -> ()
          | _ -> Alcotest.fail "rel attr not a float")
        edge_spans;
      Alcotest.(check (option int)) "requests counter" (Some r.Planner.requests)
        (Obs.Metrics.counter_value "planner.requests");
      Alcotest.(check (option int)) "cache_hits counter"
        (Some r.Planner.cache_hits)
        (Obs.Metrics.counter_value "planner.cache_hits");
      Alcotest.(check bool) "cache saves requests" true (r.Planner.cache_hits > 0))

let test_middleware_stage_spans () =
  with_obs (fun () ->
      let _, p = setup Queries.query1_text in
      let plan = Middleware.partition_of p (Middleware.Greedy Planner.default_params) in
      let e = Middleware.execute p plan in
      ignore (Middleware.document_of p e);
      List.iter
        (fun stage ->
          Alcotest.(check bool) (stage ^ " span present") true
            (find_spans stage <> []);
          let s = List.hd (find_spans stage) in
          match attr_exn s "work" with
          | Obs.Attr.Int _ -> ()
          | _ -> Alcotest.failf "%s: work attr not an int" stage)
        [
          "middleware.prepare"; "middleware.plan"; "sqlgen.streams";
          "middleware.execute"; "middleware.tag";
        ];
      (* executor operator spans appear under execute.stream *)
      Alcotest.(check bool) "operator spans" true
        (find_spans "exec.scan" <> [] && find_spans "exec.sort" <> []))

let test_per_stream_stats () =
  let _, p = setup Queries.query1_text in
  let plan = Middleware.partition_of p Middleware.Fully_partitioned in
  let e = Middleware.execute p plan in
  Alcotest.(check int) "one stats record per stream" 10
    (List.length e.Middleware.per_stream);
  let sum f = List.fold_left (fun acc se -> acc + f se) 0 e.Middleware.per_stream in
  Alcotest.(check int) "work is the sum of per-stream work" e.Middleware.work
    (sum (fun se -> se.Middleware.se_stats.R.Executor.work));
  Alcotest.(check int) "tuples is the sum of per-stream rows" e.Middleware.tuples
    (sum (fun se -> R.Relation.cardinality se.Middleware.se_relation));
  (* the records really are distinct, not one shared accumulator *)
  let rec distinct = function
    | [] -> true
    | se :: rest ->
        List.for_all
          (fun se' ->
            not (se.Middleware.se_stats == se'.Middleware.se_stats))
          rest
        && distinct rest
  in
  Alcotest.(check bool) "stats records not shared" true
    (distinct e.Middleware.per_stream)

let test_tracing_does_not_change_work () =
  let _, p = setup Queries.query1_text in
  let plan = Middleware.partition_of p Middleware.Unified in
  let off = (Middleware.execute p plan).Middleware.work in
  let on =
    Obs.Control.with_enabled true (fun () ->
        Fun.protect
          ~finally:(fun () ->
            Obs.Span.reset ();
            Obs.Metrics.reset ())
          (fun () -> (Middleware.execute p plan).Middleware.work))
  in
  Alcotest.(check int) "work identical with tracing on" off on

let suite =
  [
    Alcotest.test_case "span nesting and ordering" `Quick test_span_nesting;
    Alcotest.test_case "attribute capture" `Quick test_span_attrs;
    Alcotest.test_case "exception safety" `Quick test_span_exception_safety;
    Alcotest.test_case "disabled is a no-op" `Quick test_disabled_is_noop;
    Alcotest.test_case "counters and gauges" `Quick test_counters_and_gauges;
    Alcotest.test_case "histogram buckets" `Quick test_histogram_buckets;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "jsonl export" `Quick test_jsonl_export;
    Alcotest.test_case "greedy emits plan.edge spans" `Quick
      test_greedy_plan_edge_spans;
    Alcotest.test_case "middleware stage spans" `Quick test_middleware_stage_spans;
    Alcotest.test_case "per-stream stats breakdown" `Quick test_per_stream_stats;
    Alcotest.test_case "tracing neutral on work counts" `Quick
      test_tracing_does_not_change_work;
  ]
