(* The merge tagger (paper Sec. 3.3): stream merging, nesting, document
   order, fused-payload emission, sinks. *)

open Silkroute
module R = Relational

let setup ?(scale = 0.1) text =
  let db = Tpch.Gen.generate (Tpch.Gen.config scale) in
  (db, Middleware.prepare_text db text)

let doc_of ?(style = Sql_gen.Outer_join) ?(reduce = false) _db p mask =
  let plan = Partition.of_mask p.Middleware.tree mask in
  let e = Middleware.execute ~style ~reduce p plan in
  Middleware.document_of p e

let test_figure8_output () =
  (* the paper's Fig. 8: exact expected document *)
  let db = Tpch.Gen.figure8_database () in
  let p = Middleware.prepare_text db Queries.fragment_text in
  let e = Middleware.execute p (Partition.unified p.Middleware.tree) in
  Alcotest.(check string) "matches Fig. 8"
    "<suppliers><supplier><nation>USA</nation><part>plated brass</part>\
     <part>anodized steel</part></supplier><supplier><nation>Spain</nation>\
     </supplier><supplier><nation>France</nation><part>polished nickel</part>\
     </supplier></suppliers>"
    (Middleware.xml_string_of p e)

let test_all_plans_agree_fragment () =
  let db = Tpch.Gen.figure8_database () in
  let p = Middleware.prepare_text db Queries.fragment_text in
  let reference = doc_of db p 3 in
  List.iter
    (fun mask ->
      Alcotest.(check bool)
        (Printf.sprintf "mask %d agrees" mask)
        true
        (Xmlkit.Xml.equal (doc_of db p mask) reference))
    [ 0; 1; 2 ]

let test_document_order_q1 () =
  let db, p = setup Queries.query1_text in
  let doc = doc_of db p 511 in
  (* every supplier's children follow the DTD order name,nation,region,part* *)
  let suppliers = Xmlkit.Xml.children_named (Xmlkit.Xml.root doc) "supplier" in
  Alcotest.(check bool) "has suppliers" true (List.length suppliers > 0);
  List.iter
    (fun s ->
      let tags =
        List.map (fun (e : Xmlkit.Xml.element) -> e.Xmlkit.Xml.tag)
          (Xmlkit.Xml.child_elements s)
      in
      match tags with
      | "name" :: "nation" :: "region" :: rest ->
          Alcotest.(check bool) "parts last" true
            (List.for_all (fun t -> t = "part") rest)
      | _ -> Alcotest.fail ("bad order: " ^ String.concat "," tags))
    suppliers

let test_dtd_validity_q1_q2 () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.2) in
  let p1 = Middleware.prepare_text db Queries.query1_text in
  let d1 = Middleware.document_of p1 (Middleware.execute p1 (Partition.unified p1.Middleware.tree)) in
  Alcotest.(check (list string)) "Q1 valid" []
    (List.map (fun e -> Format.asprintf "%a" Xmlkit.Validate.pp_error e)
       (Xmlkit.Validate.validate Queries.dtd_query1 d1));
  let p2 = Middleware.prepare_text db Queries.query2_text in
  let d2 = Middleware.document_of p2 (Middleware.execute p2 (Partition.unified p2.Middleware.tree)) in
  Alcotest.(check bool) "Q2 valid" true (Xmlkit.Validate.is_valid Queries.dtd_query2 d2)

let test_supplier_without_parts_kept () =
  (* outer-join semantics: part-less suppliers still appear *)
  let db = Tpch.Gen.generate (Tpch.Gen.config 1.0) in
  let p = Middleware.prepare_text db Queries.query1_text in
  let doc = Middleware.document_of p (Middleware.execute p (Partition.unified p.Middleware.tree)) in
  let suppliers = Xmlkit.Xml.children_named (Xmlkit.Xml.root doc) "supplier" in
  Alcotest.(check int) "all suppliers present" (R.Database.row_count db "Supplier")
    (List.length suppliers);
  Alcotest.(check bool) "some have no parts" true
    (List.exists
       (fun s -> Xmlkit.Xml.children_named s "part" = [])
       suppliers)

let test_reduced_equals_non_reduced () =
  let db, p = setup ~scale:0.3 Queries.query2_text in
  List.iter
    (fun mask ->
      let a = doc_of db p mask in
      let b = doc_of ~reduce:true db p mask in
      let c = doc_of ~style:Sql_gen.Outer_union db p mask in
      let d = doc_of ~style:Sql_gen.Outer_union ~reduce:true db p mask in
      Alcotest.(check bool) "reduce invariant" true (Xmlkit.Xml.equal a b);
      Alcotest.(check bool) "outer-union invariant" true (Xmlkit.Xml.equal a c);
      Alcotest.(check bool) "both invariant" true (Xmlkit.Xml.equal a d))
    [ 0; 10; 101; 511 ]

let test_empty_database () =
  let db = Tpch.Gen.empty_database () in
  let p = Middleware.prepare_text db Queries.query1_text in
  let e = Middleware.execute p (Partition.unified p.Middleware.tree) in
  (* the streaming sink cannot self-close (it writes the open tag before
     knowing the element is empty) *)
  Alcotest.(check string) "just the root" "<suppliers></suppliers>"
    (Middleware.xml_string_of p e);
  Alcotest.(check string) "document sink self-closes" "<suppliers/>"
    (Xmlkit.Serialize.to_string (Middleware.document_of p e))

let test_buffer_and_document_sinks_agree () =
  let _db, p = setup Queries.query1_text in
  let e = Middleware.execute p (Partition.of_mask p.Middleware.tree 37) in
  let via_string = Middleware.xml_string_of p e in
  let via_doc = Xmlkit.Serialize.to_string (Middleware.document_of p e) in
  Alcotest.(check string) "agree" via_doc via_string

let test_tagger_output_parses () =
  let _db, p = setup Queries.query2_text in
  let e = Middleware.execute p (Partition.unified p.Middleware.tree) in
  let doc = Xmlkit.Parse.parse (Middleware.xml_string_of p e) in
  Alcotest.(check bool) "well-formed" true
    (Xmlkit.Xml.equal doc (Middleware.document_of p e))

let test_escaping_through_tagger () =
  let db = Tpch.Gen.empty_database () in
  R.Database.load db "Region" [ [| R.Value.Int 1; R.Value.String "A&B <Ltd>" |] ];
  let p =
    Middleware.prepare_text db
      "view regions { from Region $r construct <region>$r.name</region> }"
  in
  let e = Middleware.execute p (Partition.unified p.Middleware.tree) in
  Alcotest.(check string) "escaped"
    "<regions><region>A&amp;B &lt;Ltd&gt;</region></regions>"
    (Middleware.xml_string_of p e)

let test_constant_content () =
  let db = Tpch.Gen.figure8_database () in
  let p =
    Middleware.prepare_text db
      "view v { from Region $r construct <region><kind>'geo'</kind><n>$r.name</n></region> }"
  in
  let e = Middleware.execute p (Partition.unified p.Middleware.tree) in
  let doc = Middleware.document_of p e in
  let regions = Xmlkit.Xml.children_named (Xmlkit.Xml.root doc) "region" in
  Alcotest.(check int) "three regions" 3 (List.length regions);
  List.iter
    (fun r ->
      match Xmlkit.Xml.children_named r "kind" with
      | [ k ] -> Alcotest.(check string) "constant" "geo" (Xmlkit.Xml.text_content k)
      | _ -> Alcotest.fail "kind missing")
    regions

let test_mixed_text_and_children () =
  (* an element with both text and element children, split across
     fragments: text must precede the child (document order) *)
  let db = Tpch.Gen.figure8_database () in
  let p =
    Middleware.prepare_text db
      {|view v { from Nation $n construct
          <nation>$n.name
            { from Region $r where $n.regionkey = $r.regionkey
              construct <region>$r.name</region> } </nation> }|}
  in
  List.iter
    (fun mask ->
      let e = Middleware.execute p (Partition.of_mask p.Middleware.tree mask) in
      let doc = Middleware.document_of p e in
      let nations = Xmlkit.Xml.children_named (Xmlkit.Xml.root doc) "nation" in
      Alcotest.(check int) "three nations" 3 (List.length nations);
      List.iter
        (fun (n : Xmlkit.Xml.element) ->
          match n.Xmlkit.Xml.children with
          | Xmlkit.Xml.Text _ :: Xmlkit.Xml.Element { Xmlkit.Xml.tag = "region"; _ } :: [] -> ()
          | _ -> Alcotest.fail "text must precede region child")
        nations)
    [ 0; 1 ]

let test_parallel_top_queries_forest () =
  (* a view-tree forest: two parallel top-level queries under one root *)
  let db = Tpch.Gen.figure8_database () in
  let p =
    Middleware.prepare_text db
      {|view directory
        { from Supplier $s construct <supplier>$s.name</supplier> }
        { from Nation $n construct <nation>$n.name</nation> }|}
  in
  let truth = Middleware.materialize_naive p in
  List.iter
    (fun mask ->
      let e = Middleware.execute p (Partition.of_mask p.Middleware.tree mask) in
      Alcotest.(check bool) (Printf.sprintf "mask %d" mask) true
        (Xmlkit.Xml.equal (Middleware.document_of p e) truth))
    (Partition.all_masks p.Middleware.tree);
  (* all suppliers precede all nations (document order of top queries) *)
  let tags =
    List.map (fun (e : Xmlkit.Xml.element) -> e.Xmlkit.Xml.tag)
      (Xmlkit.Xml.child_elements (Xmlkit.Xml.root truth))
  in
  Alcotest.(check (list string)) "forest order"
    [ "supplier"; "supplier"; "supplier"; "nation"; "nation"; "nation" ] tags

let test_constant_space_depth_bound () =
  (* Sec. 3.3: tagger memory depends on the view tree, not the database.
     Track the open-element stack depth through a custom sink: it must
     never exceed the view-tree depth + 1 (the document root), at any
     database scale. *)
  let check scale =
    let db = Tpch.Gen.generate (Tpch.Gen.config scale) in
    let p = Middleware.prepare_text db Queries.query1_text in
    let e = Middleware.execute p (Partition.of_mask p.Middleware.tree 237) in
    let depth = ref 0 and max_depth = ref 0 in
    let sink =
      {
        Tagger.on_open =
          (fun _ ->
            incr depth;
            if !depth > !max_depth then max_depth := !depth);
        on_text = (fun _ -> ());
        on_close = (fun _ -> decr depth);
      }
    in
    Tagger.tag p.Middleware.tree e.Middleware.streams sink;
    Alcotest.(check int) "balanced" 0 !depth;
    !max_depth
  in
  let tree_depth = 4 (* Query 1: supplier/part/order/leaf *) in
  let small = check 0.1 and large = check 0.8 in
  Alcotest.(check int) "bounded by tree depth (small)" (tree_depth + 1) small;
  Alcotest.(check int) "independent of database size" small large

let test_sibling_order_deterministic () =
  (* sibling instances appear in key order (the ORDER BY sort keys),
     identically across plans *)
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.3) in
  let p = Middleware.prepare_text db Queries.query1_text in
  let names_of mask =
    let e = Middleware.execute p (Partition.of_mask p.Middleware.tree mask) in
    let doc = Middleware.document_of p e in
    Xmlkit.Xml.children_named (Xmlkit.Xml.root doc) "supplier"
    |> List.concat_map (fun s -> Xmlkit.Xml.children_named s "part")
    |> List.filter_map (fun part ->
           match Xmlkit.Xml.children_named part "name" with
           | [ n ] -> Some (Xmlkit.Xml.text_content n)
           | _ -> None)
  in
  let a = names_of 0 and b = names_of 511 and c = names_of 73 in
  Alcotest.(check (list string)) "plan-independent order" a b;
  Alcotest.(check (list string)) "plan-independent order 2" a c

let suite =
  [
    Alcotest.test_case "Fig. 8 exact output" `Quick test_figure8_output;
    Alcotest.test_case "constant-space depth bound" `Quick test_constant_space_depth_bound;
    Alcotest.test_case "deterministic sibling order" `Quick test_sibling_order_deterministic;
    Alcotest.test_case "parallel top-level queries" `Quick test_parallel_top_queries_forest;
    Alcotest.test_case "all fragment plans agree" `Quick test_all_plans_agree_fragment;
    Alcotest.test_case "document order (Q1)" `Quick test_document_order_q1;
    Alcotest.test_case "DTD validity (Q1, Q2)" `Quick test_dtd_validity_q1_q2;
    Alcotest.test_case "part-less suppliers kept" `Quick test_supplier_without_parts_kept;
    Alcotest.test_case "reduce/style invariance" `Quick test_reduced_equals_non_reduced;
    Alcotest.test_case "empty database" `Quick test_empty_database;
    Alcotest.test_case "sinks agree" `Quick test_buffer_and_document_sinks_agree;
    Alcotest.test_case "output parses back" `Quick test_tagger_output_parses;
    Alcotest.test_case "escaping" `Quick test_escaping_through_tagger;
    Alcotest.test_case "constant content" `Quick test_constant_content;
    Alcotest.test_case "mixed text + children" `Quick test_mixed_text_and_children;
  ]

(* Property: every plan mask produces the same document as the naive
   materialization, on a random small database. *)
let prop_all_plans_correct =
  QCheck.Test.make ~name:"random plan = naive materialization" ~count:40
    (QCheck.make QCheck.Gen.(pair (int_bound 511) (oneofl [ `Q1; `Q2 ])))
    (fun (mask, q) ->
      let db = Tpch.Gen.generate (Tpch.Gen.config 0.1) in
      let text = match q with `Q1 -> Queries.query1_text | `Q2 -> Queries.query2_text in
      let p = Middleware.prepare_text db text in
      let truth = Middleware.materialize_naive p in
      let e = Middleware.execute p (Partition.of_mask p.Middleware.tree mask) in
      Xmlkit.Xml.equal (Middleware.document_of p e) truth)

let props = [ prop_all_plans_correct ]
