(* Exhaustive print → parse structural round trip over every SQL query
   the generator can emit for the paper's benchmark views: q1/q2 × all
   2^|E| plans × {outer-join, outer-union} × {reduced, unreduced}.  The
   middleware ships SQL as text and re-parses it, so any printer/parser
   disagreement silently changes the plan the engine runs; this pins
   [parse (print q)] to be structurally equal to [q], not merely a text
   fixpoint. *)

open Silkroute
module R = Relational

let style_name = function
  | Sql_gen.Outer_join -> "outer-join"
  | Sql_gen.Outer_union -> "outer-union"

let check_stream ~ctx (s : Sql_gen.stream) =
  let q = s.Sql_gen.query in
  let structural printer pname =
    let text = printer q in
    let q' = R.Sql_parser.parse text in
    if q' <> q then
      Alcotest.failf "%s: %s round trip is not structural for\n%s" ctx pname
        text
  in
  structural R.Sql_print.to_string "to_string";
  structural R.Sql_print.to_pretty_string "to_pretty_string";
  (* the WITH renderer may rename derived aliases that collide with
     table names, so it is held to canonical-text equivalence *)
  let q' = R.Sql_parser.parse (R.Sql_print.to_with_string q) in
  if R.Sql_print.to_string q' <> R.Sql_print.to_string q then
    Alcotest.failf "%s: WITH rendering changed the query" ctx

let test_exhaustive () =
  let db = Tpch.Gen.generate (Tpch.Gen.config 0.01) in
  let total = ref 0 in
  List.iter
    (fun (qname, text) ->
      let p = Middleware.prepare_text db text in
      let tree = p.Middleware.tree in
      List.iter
        (fun style ->
          List.iter
            (fun reduce ->
              let opts =
                {
                  Sql_gen.style;
                  labels = (if reduce then Some p.Middleware.labels else None);
                }
              in
              List.iter
                (fun mask ->
                  let plan = Partition.of_mask tree mask in
                  let ctx =
                    Printf.sprintf "%s mask=%d %s reduce=%b" qname mask
                      (style_name style) reduce
                  in
                  List.iter
                    (fun s ->
                      incr total;
                      check_stream ~ctx s)
                    (Sql_gen.streams db tree plan opts))
                (Partition.all_masks tree))
            [ true; false ])
        [ Sql_gen.Outer_join; Sql_gen.Outer_union ])
    [ ("q1", Queries.query1_text); ("q2", Queries.query2_text) ];
  (* 2 views x 512 plans x 2 styles x 2 reduce modes, several streams
     per plan: make sure the loop actually enumerated them all *)
  Alcotest.(check bool)
    (Printf.sprintf "covered %d streams" !total)
    true (!total > 10_000)

let suite =
  [
    Alcotest.test_case "print-parse structural, all plans/styles" `Slow
      test_exhaustive;
  ]
