(* Statistics collection and the cost/cardinality oracle. *)

open Relational

let i n = Value.Int n

let mkdb () =
  let db = Database.create () in
  Database.add_table db
    (Schema.table "R" ~key:[ "a" ]
       [ Schema.column "a" Value.TInt; Schema.column "b" Value.TInt;
         Schema.column ~nullable:true "c" Value.TString ]);
  Database.load db "R"
    (List.init 100 (fun k ->
         [| i k; i (k mod 10);
            (if k mod 4 = 0 then Value.Null else Value.String "str") |]));
  Database.add_table db
    (Schema.table "T" ~key:[ "x" ]
       [ Schema.column "x" Value.TInt; Schema.column "r" Value.TInt ]);
  Database.load db "T" (List.init 500 (fun k -> [| i k; i (k mod 100) |]));
  db

let test_analyze_row_counts () =
  let st = Stats.analyze (mkdb ()) in
  Alcotest.(check int) "R rows" 100 (Stats.row_count st "R");
  Alcotest.(check int) "T rows" 500 (Stats.row_count st "T")

let test_analyze_ndv () =
  let st = Stats.analyze (mkdb ()) in
  (match Stats.column st "R" "a" with
  | Some c -> Alcotest.(check int) "key distinct" 100 c.Stats.distinct
  | None -> Alcotest.fail "no stats");
  match Stats.column st "R" "b" with
  | Some c -> Alcotest.(check int) "b distinct" 10 c.Stats.distinct
  | None -> Alcotest.fail "no stats"

let test_analyze_null_fraction () =
  let st = Stats.analyze (mkdb ()) in
  match Stats.column st "R" "c" with
  | Some c -> Alcotest.(check (float 0.001)) "quarter null" 0.25 c.Stats.null_fraction
  | None -> Alcotest.fail "no stats"

let test_missing_table () =
  let st = Stats.analyze (mkdb ()) in
  Alcotest.(check bool) "option none" true (Stats.table st "Z" = None);
  Alcotest.(check bool) "exn raises" true
    (try
       ignore (Stats.table_exn st "Z");
       false
     with Invalid_argument _ -> true)

let estimate db text =
  let st = Stats.analyze db in
  Cost.estimate st db (Sql_parser.parse text)

let test_scan_estimate () =
  let e = estimate (mkdb ()) "SELECT r.a AS a FROM R AS r" in
  Alcotest.(check (float 1.0)) "card = rows" 100.0 e.Cost.cardinality;
  Alcotest.(check bool) "cost positive" true (e.Cost.eval_cost > 0.0)

let test_filter_selectivity () =
  let e = estimate (mkdb ()) "SELECT r.a AS a FROM R AS r WHERE (r.b = 3)" in
  (* ndv(b) = 10 -> 1/10 selectivity *)
  Alcotest.(check (float 1.0)) "tenth" 10.0 e.Cost.cardinality

let test_key_fk_join_estimate () =
  let e =
    estimate (mkdb ())
      "SELECT t.x AS x FROM T AS t, R AS r WHERE (t.r = r.a)"
  in
  (* |T| x |R| / max(ndv) = 500*100/100 = 500 *)
  Alcotest.(check (float 50.0)) "fk join card" 500.0 e.Cost.cardinality

let test_eager_conjunct_application () =
  (* the estimator must not charge the cross product when conjuncts can
     apply during the fold (the bug class behind absurd plan costs) *)
  let e3 =
    estimate (mkdb ())
      "SELECT t.x AS x FROM T AS t, R AS r, T AS t2 \
       WHERE ((t.r = r.a) AND (t2.r = r.a))"
  in
  Alcotest.(check bool) "no cross-product blowup" true (e3.Cost.eval_cost < 1e7)

let test_left_outer_preserves_left_card () =
  let e =
    estimate (mkdb ())
      "SELECT r.a AS a FROM R AS r LEFT OUTER JOIN T AS t ON (r.a = t.x) WHERE (r.b = 999)"
  in
  Alcotest.(check bool) "at least left side" true (e.Cost.cardinality >= 1.0)

let test_union_adds () =
  let e =
    estimate (mkdb ())
      "(SELECT r.a AS k FROM R AS r) UNION ALL (SELECT t.x AS k FROM T AS t)"
  in
  Alcotest.(check (float 1.0)) "sum" 600.0 e.Cost.cardinality

let test_order_by_costs_more () =
  let db = mkdb () in
  let base = estimate db "SELECT t.x AS x FROM T AS t" in
  let sorted = estimate db "SELECT t.x AS x FROM T AS t ORDER BY x" in
  Alcotest.(check bool) "sorting charged" true
    (sorted.Cost.eval_cost > base.Cost.eval_cost)

let test_cost_combination () =
  let e = { Cost.cardinality = 10.0; eval_cost = 100.0; width = 8.0 } in
  Alcotest.(check (float 0.001)) "data size" 80.0 (Cost.data_size e);
  Alcotest.(check (float 0.001)) "linear combination" (2.0 *. 100.0 +. 3.0 *. 80.0)
    (Cost.cost ~a:2.0 ~b:3.0 e)

let test_oracle_counts_requests () =
  let db = mkdb () in
  let o = Cost.oracle db in
  Alcotest.(check int) "starts at 0" 0 (Cost.requests o);
  ignore (Cost.ask o (Sql_parser.parse "SELECT r.a AS a FROM R AS r"));
  ignore (Cost.ask o (Sql_parser.parse "SELECT t.x AS x FROM T AS t"));
  Alcotest.(check int) "two requests" 2 (Cost.requests o);
  Cost.reset_requests o;
  Alcotest.(check int) "reset" 0 (Cost.requests o)

let test_estimate_tracks_actual_within_oom () =
  (* sanity: estimated eval_cost within ~2 orders of magnitude of the
     executor's metered work on a real query *)
  let db = mkdb () in
  let q = Sql_parser.parse
      "SELECT t.x AS x, r.b AS b FROM T AS t, R AS r WHERE (t.r = r.a) ORDER BY x" in
  let st = Stats.analyze db in
  let est = Cost.estimate st db q in
  let _, stats = Executor.run_with_stats db q in
  let ratio = est.Cost.eval_cost /. float_of_int stats.Executor.work in
  Alcotest.(check bool)
    (Printf.sprintf "ratio %.3f within [0.01, 100]" ratio)
    true
    (ratio > 0.01 && ratio < 100.0)

let suite =
  [
    Alcotest.test_case "analyze: row counts" `Quick test_analyze_row_counts;
    Alcotest.test_case "analyze: distinct values" `Quick test_analyze_ndv;
    Alcotest.test_case "analyze: null fraction" `Quick test_analyze_null_fraction;
    Alcotest.test_case "missing table" `Quick test_missing_table;
    Alcotest.test_case "estimate: scan" `Quick test_scan_estimate;
    Alcotest.test_case "estimate: filter selectivity" `Quick test_filter_selectivity;
    Alcotest.test_case "estimate: key/fk join" `Quick test_key_fk_join_estimate;
    Alcotest.test_case "estimate: eager conjuncts" `Quick test_eager_conjunct_application;
    Alcotest.test_case "estimate: left outer join" `Quick test_left_outer_preserves_left_card;
    Alcotest.test_case "estimate: union adds" `Quick test_union_adds;
    Alcotest.test_case "estimate: order by charged" `Quick test_order_by_costs_more;
    Alcotest.test_case "cost combination" `Quick test_cost_combination;
    Alcotest.test_case "oracle request counting" `Quick test_oracle_counts_requests;
    Alcotest.test_case "estimate vs actual work" `Quick test_estimate_tracks_actual_within_oom;
  ]
