(* Query 3 (the extra test query of Sec. 5.1's future work): '+' labels
   via declared inclusions, the guaranteed-branch inner-join
   optimization, exhaustive correctness, and threshold transfer. *)

open Silkroute
module R = Relational

let setup ?(scale = 0.15) () =
  let db = Tpch.Gen.generate (Tpch.Gen.config scale) in
  (db, Middleware.prepare_text db Queries.query3_text)

let test_shape () =
  let _, p = setup () in
  Alcotest.(check int) "8 nodes" 8 (View_tree.node_count p.Middleware.tree);
  Alcotest.(check int) "7 edges" 7 (View_tree.edge_count p.Middleware.tree)

let label_of (p : Middleware.prepared) (sfi_p, sfi_c) =
  let t = p.Middleware.tree in
  let find sfi =
    (Array.to_list t.View_tree.nodes |> List.find (fun n -> n.View_tree.sfi = sfi))
      .View_tree.id
  in
  let e = (find sfi_p, find sfi_c) in
  let rec go i =
    if t.View_tree.edges.(i) = e then p.Middleware.labels.(i) else go (i + 1)
  in
  go 0

let test_plus_label_from_declared_inclusion () =
  let _, p = setup () in
  (* customer -> order is '*' (customers without orders exist) *)
  Alcotest.(check bool) "order *" true
    (label_of p ([ 1 ], [ 1; 3 ]) = Xmlkit.Dtd.Star);
  (* order -> item is '+': Orders[orderkey] ⊆ LineItem[orderkey] declared *)
  Alcotest.(check bool) "item +" true
    (label_of p ([ 1; 3 ], [ 1; 3; 2 ]) = Xmlkit.Dtd.Plus);
  (* item -> part is '1' via the composite FK to PartSupp? no — via
     Part's key on l.partkey: FD holds and partkey NOT NULL... the FK is
     (partkey,suppkey)->PartSupp, not partkey->Part, so C2 is not
     derivable: expect '?' *)
  Alcotest.(check bool) "part 1-or-?" true
    (let l = label_of p ([ 1; 3; 2 ], [ 1; 3; 2; 1 ]) in
     l = Xmlkit.Dtd.One || l = Xmlkit.Dtd.Opt)

let test_guaranteed_branch_inner_join () =
  (* with reduction, the order fragment joins its '+' item branch with an
     inner join instead of a left outer join *)
  let db, p = setup () in
  let t = p.Middleware.tree in
  (* keep only order->item (edge between sfi [1;3] and [1;3;2]) *)
  let keep =
    Array.map
      (fun (a, b) ->
        ((View_tree.node t a).View_tree.sfi, (View_tree.node t b).View_tree.sfi)
        = ([ 1; 3 ], [ 1; 3; 2 ]))
      t.View_tree.edges
  in
  let plan = Partition.of_keep t keep in
  let with_labels =
    Sql_gen.streams db t plan
      { Sql_gen.style = Sql_gen.Outer_join; labels = Some p.Middleware.labels }
  in
  let order_stream =
    List.find
      (fun (s : Sql_gen.stream) ->
        List.length s.Sql_gen.fragment.Partition.members >= 2)
      with_labels
  in
  Alcotest.(check int) "no outer join needed" 0
    (R.Sql.count_outer_joins order_stream.Sql_gen.query);
  (* without labels the same fragment uses a left outer join *)
  let without =
    Sql_gen.streams db t plan Sql_gen.default_options
    |> List.find (fun (s : Sql_gen.stream) ->
           List.length s.Sql_gen.fragment.Partition.members >= 2)
  in
  Alcotest.(check int) "outer join without labels" 1
    (R.Sql.count_outer_joins without.Sql_gen.query)

let test_exhaustive_256_plans () =
  let _, p = setup ~scale:0.12 () in
  let truth = Middleware.materialize_naive p in
  List.iter
    (fun mask ->
      let plan = Partition.of_mask p.Middleware.tree mask in
      let e = Middleware.execute p plan in
      if not (Xmlkit.Xml.equal (Middleware.document_of p e) truth) then
        Alcotest.failf "plan %d diverges" mask;
      if mask mod 8 = 0 then begin
        let er = Middleware.execute ~reduce:true p plan in
        if not (Xmlkit.Xml.equal (Middleware.document_of p er) truth) then
          Alcotest.failf "plan %d (reduced) diverges" mask
      end)
    (Partition.all_masks p.Middleware.tree)

let test_dtd_validity () =
  let _, p = setup ~scale:0.3 () in
  let e = Middleware.execute ~reduce:true p (Partition.unified p.Middleware.tree) in
  let doc = Middleware.document_of p e in
  Alcotest.(check (list string)) "valid" []
    (List.map (fun er -> Format.asprintf "%a" Xmlkit.Validate.pp_error er)
       (Xmlkit.Validate.validate Queries.dtd_query3 doc))

let test_thresholds_transfer () =
  (* the paper's hypothesis: the fixed (a,b,t1,t2) depend on the engine,
     not the query — the greedy plan for Query 3 must beat both default
     strategies with the same default parameters *)
  let db, p = setup ~scale:1.0 () in
  let oracle = R.Cost.oracle db in
  let r =
    Planner.gen_plan ~reduce:true db oracle p.Middleware.tree p.Middleware.labels
      Planner.default_params
  in
  let work plan = (Middleware.execute ~reduce:true p plan).Middleware.work in
  let greedy = work (Planner.best_plan p.Middleware.tree r) in
  let fully = work (Partition.fully_partitioned p.Middleware.tree) in
  let unified_ou =
    (Middleware.execute ~style:Sql_gen.Outer_union p
       (Partition.unified p.Middleware.tree))
      .Middleware.work
  in
  Alcotest.(check bool)
    (Printf.sprintf "greedy %d <= fully %d" greedy fully)
    true (greedy <= fully);
  Alcotest.(check bool)
    (Printf.sprintf "greedy %d < outer-union %d" greedy unified_ou)
    true (greedy < unified_ou)

let test_every_order_has_items () =
  let _, p = setup ~scale:0.5 () in
  let e = Middleware.execute ~reduce:true p (Partition.unified p.Middleware.tree) in
  let doc = Middleware.document_of p e in
  Xmlkit.Xml.fold_elements
    (fun () el ->
      if el.Xmlkit.Xml.tag = "order" then
        Alcotest.(check bool) "order has items" true
          (Xmlkit.Xml.children_named el "item" <> []))
    () doc

let suite =
  [
    Alcotest.test_case "shape" `Quick test_shape;
    Alcotest.test_case "'+' label from inclusion" `Quick test_plus_label_from_declared_inclusion;
    Alcotest.test_case "guaranteed branch inner join" `Quick test_guaranteed_branch_inner_join;
    Alcotest.test_case "exhaustive 128 plans" `Slow test_exhaustive_256_plans;
    Alcotest.test_case "DTD validity" `Quick test_dtd_validity;
    Alcotest.test_case "thresholds transfer" `Quick test_thresholds_transfer;
    Alcotest.test_case "guaranteed items present" `Quick test_every_order_has_items;
  ]
